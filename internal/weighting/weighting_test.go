package weighting

import (
	"math"
	"testing"

	"repro/internal/apnic"
	"repro/internal/dates"
	"repro/internal/itu"
	"repro/internal/orgs"
	"repro/internal/world"
)

func pair(cc, org string) orgs.CountryOrg { return orgs.CountryOrg{Country: cc, Org: org} }

func TestUniform(t *testing.T) {
	pairs := []orgs.CountryOrg{pair("A", "x"), pair("A", "y"), pair("B", "z"), pair("B", "w")}
	w := Uniform{}.Weights(pairs)
	for _, p := range pairs {
		if math.Abs(w[p]-0.25) > 1e-12 {
			t.Fatalf("uniform weight %v", w[p])
		}
	}
	if len(Uniform{}.Weights(nil)) != 0 {
		t.Fatal("empty pairs should give empty weights")
	}
}

func TestPerCountry(t *testing.T) {
	pairs := []orgs.CountryOrg{pair("A", "x"), pair("A", "y"), pair("B", "z")}
	w := PerCountry{}.Weights(pairs)
	if math.Abs(w[pair("A", "x")]-0.25) > 1e-12 || math.Abs(w[pair("B", "z")]-0.5) > 1e-12 {
		t.Fatalf("per-country weights = %v", w)
	}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestByMeasure(t *testing.T) {
	pairs := []orgs.CountryOrg{pair("A", "x"), pair("A", "y")}
	s := ByMeasure{Label: "test", Measure: map[orgs.CountryOrg]float64{
		pair("A", "x"): 30,
		pair("A", "y"): 10,
	}}
	w := s.Weights(pairs)
	if math.Abs(w[pair("A", "x")]-0.75) > 1e-12 {
		t.Fatalf("measure weight = %v", w[pair("A", "x")])
	}
	if s.Name() != "test" {
		t.Fatal("Name mismatch")
	}
	// Missing pairs get zero; an all-missing measure returns empty.
	if len((ByMeasure{Label: "z"}).Weights(pairs)) != 0 {
		t.Fatal("zero measure should return no weights")
	}
}

func TestEvaluatePerfectScheme(t *testing.T) {
	truth := map[orgs.CountryOrg]float64{
		pair("A", "x"): 0.7,
		pair("A", "y"): 0.3,
	}
	ev := Evaluate(ByMeasure{Label: "oracle", Measure: truth}, truth)
	if ev.TotalVariation > 1e-12 || ev.KLDivergence > 1e-12 || ev.TopShareError > 1e-12 {
		t.Fatalf("oracle evaluation not perfect: %+v", ev)
	}
}

func TestEvaluateUniformWorseThanOracle(t *testing.T) {
	truth := map[orgs.CountryOrg]float64{
		pair("A", "x"): 0.9,
		pair("A", "y"): 0.05,
		pair("B", "z"): 0.05,
	}
	uni := Evaluate(Uniform{}, truth)
	if uni.TotalVariation < 0.3 {
		t.Fatalf("uniform TV %v should be large on a skewed truth", uni.TotalVariation)
	}
	if uni.TopShareError < 0.4 {
		t.Fatalf("uniform top-share error %v", uni.TopShareError)
	}
}

func TestEvaluateZeroWeightGivesInfiniteKL(t *testing.T) {
	truth := map[orgs.CountryOrg]float64{
		pair("A", "x"): 0.5,
		pair("A", "y"): 0.5,
	}
	s := ByMeasure{Label: "partial", Measure: map[orgs.CountryOrg]float64{pair("A", "x"): 1}}
	ev := Evaluate(s, truth)
	if !math.IsInf(ev.KLDivergence, 1) {
		t.Fatalf("KL should be +Inf when truth mass gets zero weight: %v", ev.KLDivergence)
	}
}

// The paper's claim, end to end: weighting by APNIC estimates approximates
// the true user distribution far better than the traditional equal
// weightings.
func TestAPNICWeightingBeatsNaive(t *testing.T) {
	w := world.MustBuild(world.Config{Seed: 11})
	gen := apnic.New(w, itu.New(w, 11), 11)
	d := dates.New(2024, 4, 21)

	truth := map[orgs.CountryOrg]float64{}
	for _, p := range w.CountryOrgPairs(d) {
		if u := w.TrueUsers(p.Country, p.Org, d); u > 0 {
			truth[p] = u
		}
	}

	apnicUsers := gen.Generate(d).OrgUsers(w.Registry)
	evAPNIC := Evaluate(ByMeasure{Label: "apnic-users", Measure: apnicUsers}, truth)
	evUniform := Evaluate(Uniform{}, truth)
	evCountry := Evaluate(PerCountry{}, truth)

	if evAPNIC.TotalVariation >= evUniform.TotalVariation {
		t.Errorf("APNIC TV %v not better than uniform %v", evAPNIC.TotalVariation, evUniform.TotalVariation)
	}
	if evAPNIC.TotalVariation >= evCountry.TotalVariation {
		t.Errorf("APNIC TV %v not better than per-country %v", evAPNIC.TotalVariation, evCountry.TotalVariation)
	}
	if evAPNIC.TotalVariation > 0.35 {
		t.Errorf("APNIC TV %v too far from truth", evAPNIC.TotalVariation)
	}
	if evAPNIC.TopShareError > 0.1 {
		t.Errorf("APNIC top-share error %v", evAPNIC.TopShareError)
	}
}
