// Package weighting implements the AS-weighting schemes the paper's
// introduction contrasts: researchers who lack user data traditionally
// weight every network (or every IP address, or every country) equally,
// while the APNIC dataset allows weighting by estimated users. This
// package makes the comparison quantitative: each scheme assigns a weight
// to every (country, org) pair, and Evaluate scores a scheme's weights
// against the ground-truth user distribution.
package weighting

import (
	"math"
	"sort"

	"repro/internal/orgs"
	"repro/internal/stats"
)

// Scheme assigns relative weights (summing to 1) to (country, org) pairs.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Weights returns a normalized weight per pair.
	Weights(pairs []orgs.CountryOrg) map[orgs.CountryOrg]float64
}

// Uniform weights every network equally — "treating all networks equally",
// the fallback the paper's introduction describes.
type Uniform struct{}

// Name implements Scheme.
func (Uniform) Name() string { return "uniform-per-network" }

// Weights implements Scheme.
func (Uniform) Weights(pairs []orgs.CountryOrg) map[orgs.CountryOrg]float64 {
	out := make(map[orgs.CountryOrg]float64, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	w := 1 / float64(len(pairs))
	for _, p := range pairs {
		out[p] = w
	}
	return out
}

// PerCountry splits weight equally across countries, then equally across
// each country's networks.
type PerCountry struct{}

// Name implements Scheme.
func (PerCountry) Name() string { return "uniform-per-country" }

// Weights implements Scheme.
func (PerCountry) Weights(pairs []orgs.CountryOrg) map[orgs.CountryOrg]float64 {
	perCountry := map[string]int{}
	for _, p := range pairs {
		perCountry[p.Country]++
	}
	out := make(map[orgs.CountryOrg]float64, len(pairs))
	if len(perCountry) == 0 {
		return out
	}
	cw := 1 / float64(len(perCountry))
	for _, p := range pairs {
		out[p] = cw / float64(perCountry[p.Country])
	}
	return out
}

// ByMeasure weights pairs proportionally to an external measurement —
// instantiate with APNIC user estimates for the paper's recommended
// scheme, or with address-space sizes for the "per IP" tradition.
type ByMeasure struct {
	// Label names the measurement, e.g. "apnic-users".
	Label string
	// Measure maps pairs to non-negative magnitudes; missing pairs get 0.
	Measure map[orgs.CountryOrg]float64
}

// Name implements Scheme.
func (s ByMeasure) Name() string { return s.Label }

// Weights implements Scheme.
func (s ByMeasure) Weights(pairs []orgs.CountryOrg) map[orgs.CountryOrg]float64 {
	out := make(map[orgs.CountryOrg]float64, len(pairs))
	total := 0.0
	for _, p := range pairs {
		v := s.Measure[p]
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		return out
	}
	for _, p := range pairs {
		if v := s.Measure[p]; v > 0 {
			out[p] = v / total
		} else {
			out[p] = 0
		}
	}
	return out
}

// Evaluation scores a scheme's weights against the true user distribution.
type Evaluation struct {
	Scheme string
	// TotalVariation is ½ Σ |w_i − truth_i| ∈ [0, 1]; 0 = perfect.
	TotalVariation float64
	// KLDivergence is D(truth ‖ weights) in nats; +Inf when the scheme
	// assigns zero weight to a pair with real users.
	KLDivergence float64
	// TopShareError is |top-pair weight − top-pair truth|.
	TopShareError float64
}

// Evaluate compares a scheme against the true per-pair user distribution.
func Evaluate(s Scheme, truth map[orgs.CountryOrg]float64) Evaluation {
	pairs := make([]orgs.CountryOrg, 0, len(truth))
	for p := range truth {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Country != pairs[j].Country {
			return pairs[i].Country < pairs[j].Country
		}
		return pairs[i].Org < pairs[j].Org
	})

	weights := s.Weights(pairs)

	truthVec := make([]float64, len(pairs))
	for i, p := range pairs {
		truthVec[i] = truth[p]
	}
	truthVec = stats.Normalize(truthVec)

	ev := Evaluation{Scheme: s.Name()}
	var topTruth, topWeight float64
	topIdx := 0
	for i, p := range pairs {
		w := weights[p]
		ti := truthVec[i]
		ev.TotalVariation += math.Abs(w - ti)
		if ti > 0 {
			if w <= 0 {
				ev.KLDivergence = math.Inf(1)
			} else if !math.IsInf(ev.KLDivergence, 1) {
				ev.KLDivergence += ti * math.Log(ti/w)
			}
		}
		if ti > topTruth {
			topTruth = ti
			topIdx = i
		}
	}
	ev.TotalVariation /= 2
	topWeight = weights[pairs[topIdx]]
	ev.TopShareError = math.Abs(topWeight - topTruth)
	return ev
}
