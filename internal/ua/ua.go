// Package ua synthesizes and parses HTTP User-Agent strings. The paper's
// CDN dataset counts unique User-Agent strings per (country, org) as a
// proxy for users behind shared IPs (§3.4); the simulator therefore needs
// a UA population that is diverse enough to distinguish hosts, a parser to
// classify device and browser families, and recognizable bot agents for
// the bot-score filtering path.
package ua

import (
	"fmt"
	"strings"

	"repro/internal/rng"
)

// Class is the broad device class of a User-Agent.
type Class int

// Device classes.
const (
	Unknown Class = iota
	Desktop
	Mobile
	Bot
)

func (c Class) String() string {
	switch c {
	case Desktop:
		return "desktop"
	case Mobile:
		return "mobile"
	case Bot:
		return "bot"
	default:
		return "unknown"
	}
}

// Info is the result of parsing a User-Agent string.
type Info struct {
	Browser string // Chrome, Firefox, Safari, Edge, bot name, ...
	Version string // major version, e.g. "124"
	OS      string // Windows, macOS, Linux, Android, iOS
	Class   Class
}

// desktop platform fragments with rough market weights.
var desktopPlatforms = []struct {
	frag   string
	os     string
	weight float64
}{
	{"Windows NT 10.0; Win64; x64", "Windows", 0.55},
	{"Macintosh; Intel Mac OS X 10_15_7", "macOS", 0.25},
	{"X11; Linux x86_64", "Linux", 0.08},
	{"Windows NT 6.1; Win64; x64", "Windows", 0.07},
	{"X11; Ubuntu; Linux x86_64", "Linux", 0.05},
}

var mobilePlatforms = []struct {
	frag   string
	os     string
	weight float64
}{
	{"Linux; Android 14; SM-S918B", "Android", 0.22},
	{"Linux; Android 13; SM-A536B", "Android", 0.20},
	{"Linux; Android 12; Redmi Note 11", "Android", 0.15},
	{"Linux; Android 11; M2101K6G", "Android", 0.08},
	{"iPhone; CPU iPhone OS 17_4 like Mac OS X", "iOS", 0.20},
	{"iPhone; CPU iPhone OS 16_6 like Mac OS X", "iOS", 0.10},
	{"iPad; CPU OS 17_4 like Mac OS X", "iOS", 0.05},
}

// bots the CDN's detector recognizes by UA alone.
var botAgents = []string{
	"Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)",
	"Mozilla/5.0 (compatible; bingbot/2.0; +http://www.bing.com/bingbot.htm)",
	"Mozilla/5.0 (compatible; AhrefsBot/7.0; +http://ahrefs.com/robot/)",
	"curl/8.4.0",
	"python-requests/2.31.0",
	"Go-http-client/2.0",
	"Scrapy/2.11.0 (+https://scrapy.org)",
	"okhttp/4.12.0",
}

var (
	desktopCum []float64
	mobileCum  []float64
)

func init() {
	dw := make([]float64, len(desktopPlatforms))
	for i, p := range desktopPlatforms {
		dw[i] = p.weight
	}
	desktopCum = rng.Cumulative(dw)
	mw := make([]float64, len(mobilePlatforms))
	for i, p := range mobilePlatforms {
		mw[i] = p.weight
	}
	mobileCum = rng.Cumulative(mw)
}

// Generator synthesizes User-Agent strings with a configurable mobile
// share. The zero value is not usable; call NewGenerator.
type Generator struct {
	stream      *rng.Stream
	mobileShare float64
}

// NewGenerator returns a generator drawing from stream with the given
// probability of producing a mobile UA.
func NewGenerator(stream *rng.Stream, mobileShare float64) *Generator {
	return &Generator{stream: stream, mobileShare: mobileShare}
}

// Generate returns a synthetic human-browser User-Agent. Two calls almost
// never return identical strings because the browser build number is drawn
// from a large space — mirroring the empirical near-uniqueness of real UA
// strings that the paper's user-counting relies on.
func (g *Generator) Generate() string {
	if g.stream.Bool(g.mobileShare) {
		return g.mobile()
	}
	return g.desktop()
}

func (g *Generator) chromeVersion() string {
	major := 110 + g.stream.Intn(20)
	build := 5000 + g.stream.Intn(2000)
	patch := g.stream.Intn(200)
	return fmt.Sprintf("%d.0.%d.%d", major, build, patch)
}

func (g *Generator) desktop() string {
	p := desktopPlatforms[g.stream.Categorical(desktopCum)]
	switch g.stream.Intn(10) {
	case 0, 1: // Firefox
		v := 115 + g.stream.Intn(12)
		return fmt.Sprintf("Mozilla/5.0 (%s; rv:%d.0) Gecko/20100101 Firefox/%d.0", p.frag, v, v)
	case 2: // Safari (only plausible on macOS; fall through otherwise)
		if p.os == "macOS" {
			v := 16 + g.stream.Intn(2)
			minor := g.stream.Intn(6)
			return fmt.Sprintf("Mozilla/5.0 (%s) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/%d.%d Safari/605.1.15", p.frag, v, minor)
		}
		fallthrough
	case 3: // Edge
		ver := g.chromeVersion()
		return fmt.Sprintf("Mozilla/5.0 (%s) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%s Safari/537.36 Edg/%s", p.frag, ver, ver)
	default: // Chrome
		return fmt.Sprintf("Mozilla/5.0 (%s) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%s Safari/537.36", p.frag, g.chromeVersion())
	}
}

func (g *Generator) mobile() string {
	p := mobilePlatforms[g.stream.Categorical(mobileCum)]
	if p.os == "iOS" {
		v := 16 + g.stream.Intn(2)
		minor := g.stream.Intn(6)
		return fmt.Sprintf("Mozilla/5.0 (%s) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/%d.%d Mobile/15E148 Safari/604.1", p.frag, v, minor)
	}
	return fmt.Sprintf("Mozilla/5.0 (%s) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%s Mobile Safari/537.36", p.frag, g.chromeVersion())
}

// GenerateBot returns a bot User-Agent.
func (g *Generator) GenerateBot() string {
	return botAgents[g.stream.Intn(len(botAgents))]
}

// Parse classifies a User-Agent string. It is intentionally conservative:
// unrecognized strings come back with Class Unknown.
func Parse(s string) Info {
	if s == "" {
		return Info{}
	}
	if isBot(s) {
		return Info{Browser: botName(s), Class: Bot}
	}
	info := Info{Class: Desktop}
	switch {
	case strings.Contains(s, "Android"):
		info.OS = "Android"
		info.Class = Mobile
	case strings.Contains(s, "iPhone OS"), strings.Contains(s, "iPad"):
		info.OS = "iOS"
		info.Class = Mobile
	case strings.Contains(s, "Windows NT"):
		info.OS = "Windows"
	case strings.Contains(s, "Mac OS X"):
		info.OS = "macOS"
	case strings.Contains(s, "Linux"):
		info.OS = "Linux"
	default:
		info.Class = Unknown
	}
	switch {
	case strings.Contains(s, "Edg/"):
		info.Browser = "Edge"
		info.Version = majorAfter(s, "Edg/")
	case strings.Contains(s, "Firefox/"):
		info.Browser = "Firefox"
		info.Version = majorAfter(s, "Firefox/")
	case strings.Contains(s, "Chrome/"):
		info.Browser = "Chrome"
		info.Version = majorAfter(s, "Chrome/")
	case strings.Contains(s, "Safari/") && strings.Contains(s, "Version/"):
		info.Browser = "Safari"
		info.Version = majorAfter(s, "Version/")
	default:
		if info.Class == Unknown {
			return Info{}
		}
	}
	return info
}

func isBot(s string) bool {
	lower := strings.ToLower(s)
	for _, marker := range []string{"bot", "curl/", "python-requests", "go-http-client", "scrapy", "okhttp", "spider", "crawler"} {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}

func botName(s string) string {
	lower := strings.ToLower(s)
	switch {
	case strings.Contains(lower, "googlebot"):
		return "Googlebot"
	case strings.Contains(lower, "bingbot"):
		return "bingbot"
	case strings.Contains(lower, "ahrefsbot"):
		return "AhrefsBot"
	case strings.Contains(lower, "curl/"):
		return "curl"
	case strings.Contains(lower, "python-requests"):
		return "python-requests"
	case strings.Contains(lower, "go-http-client"):
		return "Go-http-client"
	case strings.Contains(lower, "scrapy"):
		return "Scrapy"
	case strings.Contains(lower, "okhttp"):
		return "okhttp"
	default:
		return "bot"
	}
}

// majorAfter extracts the major version number following a marker like
// "Chrome/".
func majorAfter(s, marker string) string {
	i := strings.Index(s, marker)
	if i < 0 {
		return ""
	}
	rest := s[i+len(marker):]
	end := 0
	for end < len(rest) && rest[end] >= '0' && rest[end] <= '9' {
		end++
	}
	return rest[:end]
}
