package ua

import (
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestGenerateParsesAsHuman(t *testing.T) {
	g := NewGenerator(rng.New(1), 0.5)
	for i := 0; i < 2000; i++ {
		s := g.Generate()
		info := Parse(s)
		if info.Class == Bot {
			t.Fatalf("human UA classified as bot: %q", s)
		}
		if info.Class == Unknown {
			t.Fatalf("human UA unclassifiable: %q", s)
		}
		if info.Browser == "" {
			t.Fatalf("no browser parsed from %q", s)
		}
		if info.OS == "" {
			t.Fatalf("no OS parsed from %q", s)
		}
	}
}

func TestGenerateMobileShare(t *testing.T) {
	g := NewGenerator(rng.New(2), 0.7)
	mobile := 0
	n := 5000
	for i := 0; i < n; i++ {
		if Parse(g.Generate()).Class == Mobile {
			mobile++
		}
	}
	share := float64(mobile) / float64(n)
	if share < 0.65 || share > 0.75 {
		t.Fatalf("mobile share = %v, want ~0.7", share)
	}
}

func TestGenerateDiversity(t *testing.T) {
	// UA strings are a (good but imperfect) proxy for distinct users:
	// Chrome builds are near-unique, while Firefox/Safari collide on
	// their small version spaces, as in reality. Most draws must still
	// be distinct.
	g := NewGenerator(rng.New(3), 0.5)
	seen := map[string]bool{}
	n := 10000
	for i := 0; i < n; i++ {
		seen[g.Generate()] = true
	}
	if len(seen) < n*60/100 {
		t.Fatalf("only %d distinct UAs in %d draws", len(seen), n)
	}
}

func TestGenerateBot(t *testing.T) {
	g := NewGenerator(rng.New(4), 0.5)
	for i := 0; i < 200; i++ {
		s := g.GenerateBot()
		if Parse(s).Class != Bot {
			t.Fatalf("bot UA not classified as bot: %q", s)
		}
	}
}

func TestParseKnownAgents(t *testing.T) {
	cases := []struct {
		ua      string
		browser string
		os      string
		class   Class
	}{
		{
			"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/124.0.6367.60 Safari/537.36",
			"Chrome", "Windows", Desktop,
		},
		{
			"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_7) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/17.3 Safari/605.1.15",
			"Safari", "macOS", Desktop,
		},
		{
			"Mozilla/5.0 (X11; Linux x86_64; rv:124.0) Gecko/20100101 Firefox/124.0",
			"Firefox", "Linux", Desktop,
		},
		{
			"Mozilla/5.0 (Linux; Android 14; SM-S918B) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/123.0.6312.80 Mobile Safari/537.36",
			"Chrome", "Android", Mobile,
		},
		{
			"Mozilla/5.0 (iPhone; CPU iPhone OS 17_4 like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/17.4 Mobile/15E148 Safari/604.1",
			"Safari", "iOS", Mobile,
		},
		{
			"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/122.0.0.0 Safari/537.36 Edg/122.0.2365.92",
			"Edge", "Windows", Desktop,
		},
	}
	for _, c := range cases {
		got := Parse(c.ua)
		if got.Browser != c.browser || got.OS != c.os || got.Class != c.class {
			t.Errorf("Parse(%q) = %+v, want {%s %s %v}", c.ua, got, c.browser, c.os, c.class)
		}
		if got.Version == "" {
			t.Errorf("no version parsed from %q", c.ua)
		}
	}
}

func TestParseBots(t *testing.T) {
	cases := map[string]string{
		"Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)": "Googlebot",
		"curl/8.4.0":                  "curl",
		"python-requests/2.31.0":      "python-requests",
		"Go-http-client/2.0":          "Go-http-client",
		"SomeRandomCrawler/1.0":       "bot",
		"MySpider (+http://x.test)":   "bot",
		"okhttp/4.12.0":               "okhttp",
		"Scrapy/2.11.0 (+scrapy.org)": "Scrapy",
	}
	for uaStr, wantName := range cases {
		got := Parse(uaStr)
		if got.Class != Bot {
			t.Errorf("Parse(%q).Class = %v, want Bot", uaStr, got.Class)
		}
		if got.Browser != wantName {
			t.Errorf("Parse(%q).Browser = %q, want %q", uaStr, got.Browser, wantName)
		}
	}
}

func TestParseGarbage(t *testing.T) {
	for _, s := range []string{"", "???", "Mozilla/5.0"} {
		got := Parse(s)
		if got.Class != Unknown {
			t.Errorf("Parse(%q).Class = %v, want Unknown", s, got.Class)
		}
	}
}

func TestVersionExtraction(t *testing.T) {
	got := Parse("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/124.0.6367.60 Safari/537.36")
	if got.Version != "124" {
		t.Errorf("Version = %q, want 124", got.Version)
	}
}

func TestClassString(t *testing.T) {
	if Desktop.String() != "desktop" || Mobile.String() != "mobile" || Bot.String() != "bot" || Unknown.String() != "unknown" {
		t.Error("Class.String mismatch")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(rng.New(77), 0.4)
	g2 := NewGenerator(rng.New(77), 0.4)
	for i := 0; i < 100; i++ {
		if g1.Generate() != g2.Generate() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestDesktopSafariOnlyOnMac(t *testing.T) {
	g := NewGenerator(rng.New(5), 0)
	for i := 0; i < 3000; i++ {
		s := g.Generate()
		info := Parse(s)
		if info.Browser == "Safari" && info.Class == Desktop && !strings.Contains(s, "Mac OS X") {
			t.Fatalf("desktop Safari on non-Mac platform: %q", s)
		}
	}
}
