package stats

import "math"

// LinFit holds an ordinary-least-squares fit of y = Intercept + Slope*x.
type LinFit struct {
	Slope      float64 // β̂, the fitted slope
	Intercept  float64 // α̂, the fitted intercept
	R2         float64 // coefficient of determination of the fit
	SlopeSE    float64 // standard error of the slope
	ResidualSE float64 // residual standard error s (n-2 dof)
	N          int     // number of points
	XMean      float64 // mean of the regressor (for interval math)
	SXX        float64 // Σ(x-x̄)² (for interval math)
}

// LinearRegression fits y = a + b*x by OLS. It returns a zero-value fit
// with N set if fewer than two points (or zero x-variance) are supplied;
// callers should check Ok.
func LinearRegression(xs, ys []float64) LinFit {
	n := len(xs)
	fit := LinFit{N: n}
	if n != len(ys) || n < 2 {
		fit.R2 = math.NaN()
		return fit
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		fit.R2 = math.NaN()
		return fit
	}
	fit.Slope = sxy / sxx
	fit.Intercept = my - fit.Slope*mx
	fit.XMean = mx
	fit.SXX = sxx

	var ssRes float64
	for i := 0; i < n; i++ {
		r := ys[i] - (fit.Intercept + fit.Slope*xs[i])
		ssRes += r * r
	}
	if syy == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = 1 - ssRes/syy
	}
	if n > 2 {
		fit.ResidualSE = math.Sqrt(ssRes / float64(n-2))
		fit.SlopeSE = fit.ResidualSE / math.Sqrt(sxx)
	}
	return fit
}

// Ok reports whether the fit is usable (enough points, non-degenerate x).
func (f LinFit) Ok() bool { return f.N >= 2 && f.SXX > 0 }

// Predict returns the fitted value at x.
func (f LinFit) Predict(x float64) float64 {
	return f.Intercept + f.Slope*x
}

// PredictionInterval returns the half-width of the level prediction
// interval (e.g. level = 0.95) for a new observation at x. The interval is
// ŷ(x) ± half-width. It returns NaN when fewer than three points were fit.
func (f LinFit) PredictionInterval(x, level float64) float64 {
	if f.N < 3 || f.SXX == 0 {
		return math.NaN()
	}
	t := TQuantile(0.5+level/2, float64(f.N-2))
	dx := x - f.XMean
	se := f.ResidualSE * math.Sqrt(1+1/float64(f.N)+dx*dx/f.SXX)
	return t * se
}

// R2Identity returns the coefficient of determination of the data against
// the fixed 1:1 model y = x (not a fitted line): 1 − Σ(y−x)²/Σ(y−ȳ)².
// This is Figure 2's "R² comparison of country data to 1:1 model fit"; it
// can be negative when the identity model is worse than predicting the mean.
func R2Identity(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	my := Mean(ys)
	var ssRes, ssTot float64
	for i := 0; i < n; i++ {
		r := ys[i] - xs[i]
		ssRes += r * r
		d := ys[i] - my
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

// ElasticityFit is a log-log regression log(y) = a + β log(x). The slope β
// is the elasticity coefficient of §5.1.1: the % change in y per 1% change
// in x. Points are filtered to x>0, y>0 before fitting.
type ElasticityFit struct {
	LinFit             // the fit in log10 space
	Beta       float64 // alias of Slope: the elasticity coefficient
	Used       int     // points that survived the positivity filter
	Discarded  int     // non-positive points dropped
	logXs      []float64
	logYs      []float64
	confidence float64
}

// Elasticity fits a log-log regression at the given confidence level
// (e.g. 0.95) and retains the transformed points for outlier queries.
func Elasticity(xs, ys []float64, confidence float64) ElasticityFit {
	var lx, ly []float64
	discarded := 0
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log10(xs[i]))
			ly = append(ly, math.Log10(ys[i]))
		} else {
			discarded++
		}
	}
	fit := LinearRegression(lx, ly)
	return ElasticityFit{
		LinFit:     fit,
		Beta:       fit.Slope,
		Used:       len(lx),
		Discarded:  discarded,
		logXs:      lx,
		logYs:      ly,
		confidence: confidence,
	}
}

// Above reports whether the point (x, y) lies above the upper prediction
// bound of the fit — the paper's signal that a country's Users-to-Samples
// ratio is suspiciously high (each sample "weighs" too many users).
func (e ElasticityFit) Above(x, y float64) bool {
	if x <= 0 || y <= 0 || !e.Ok() {
		return false
	}
	lx, ly := math.Log10(x), math.Log10(y)
	hw := e.PredictionInterval(lx, e.confidence)
	if math.IsNaN(hw) {
		return false
	}
	return ly > e.Predict(lx)+hw
}

// Below reports whether the point lies below the lower prediction bound.
func (e ElasticityFit) Below(x, y float64) bool {
	if x <= 0 || y <= 0 || !e.Ok() {
		return false
	}
	lx, ly := math.Log10(x), math.Log10(y)
	hw := e.PredictionInterval(lx, e.confidence)
	if math.IsNaN(hw) {
		return false
	}
	return ly < e.Predict(lx)-hw
}

// Outliers returns the indices (into the filtered point set) of points
// outside the prediction band.
func (e ElasticityFit) Outliers() []int {
	var out []int
	for i := range e.logXs {
		hw := e.PredictionInterval(e.logXs[i], e.confidence)
		if math.IsNaN(hw) {
			continue
		}
		pred := e.Predict(e.logXs[i])
		if e.logYs[i] > pred+hw || e.logYs[i] < pred-hw {
			out = append(out, i)
		}
	}
	return out
}

// OLS2 fits y = b0 + b1*x1 + b2*x2 by ordinary least squares (normal
// equations for two regressors). It returns ok=false for degenerate
// inputs (fewer than four points or collinear regressors).
func OLS2(x1, x2, ys []float64) (b0, b1, b2 float64, ok bool) {
	n := len(ys)
	if n < 4 || len(x1) != n || len(x2) != n {
		return 0, 0, 0, false
	}
	m1, m2, my := Mean(x1), Mean(x2), Mean(ys)
	var s11, s22, s12, s1y, s2y float64
	for i := 0; i < n; i++ {
		d1 := x1[i] - m1
		d2 := x2[i] - m2
		dy := ys[i] - my
		s11 += d1 * d1
		s22 += d2 * d2
		s12 += d1 * d2
		s1y += d1 * dy
		s2y += d2 * dy
	}
	det := s11*s22 - s12*s12
	if math.Abs(det) < 1e-12*(s11*s22+1e-300) || s11 == 0 || s22 == 0 {
		return 0, 0, 0, false
	}
	b1 = (s22*s1y - s12*s2y) / det
	b2 = (s11*s2y - s12*s1y) / det
	b0 = my - b1*m1 - b2*m2
	return b0, b1, b2, true
}
