package stats

import (
	"math"
	"sort"
)

// KSTwoSample returns the two-sample Kolmogorov–Smirnov statistic
// D = sup_x |F1(x) − F2(x)| between the empirical CDFs of xs and ys.
// It returns NaN if either sample is empty.
func KSTwoSample(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return math.NaN()
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var d float64
	i, j := 0, 0
	na, nb := float64(len(a)), float64(len(b))
	for i < len(a) && j < len(b) {
		v := math.Min(a[i], b[j])
		for i < len(a) && a[i] <= v {
			i++
		}
		for j < len(b) && b[j] <= v {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSCategorical returns the Kolmogorov–Smirnov-style distance between two
// probability distributions over the same categorical domain: the maximum
// absolute difference of cumulative mass when categories are walked in a
// fixed canonical order. p and q are aligned by index (use AlignShares to
// build them from keyed maps) and are normalized internally.
//
// This is the distance the paper applies to per-country organization share
// distributions at consecutive times (§5.1.2): a large value means at least
// one organization's estimated user share moved substantially between t and
// t+1.
func KSCategorical(p, q []float64) float64 {
	if len(p) != len(q) || len(p) == 0 {
		return math.NaN()
	}
	pn := Normalize(p)
	qn := Normalize(q)
	var cp, cq, d float64
	for i := range pn {
		cp += pn[i]
		cq += qn[i]
		if diff := math.Abs(cp - cq); diff > d {
			d = diff
		}
	}
	return d
}

// MaxShareDiff returns the L∞ distance between two normalized share
// vectors: max_i |p_i − q_i|. The paper's reading of "K-S distance larger
// than 0.2" — an organization differing by at least 20% of a country's
// Internet population across consecutive days — is this statistic.
func MaxShareDiff(p, q []float64) float64 {
	if len(p) != len(q) || len(p) == 0 {
		return math.NaN()
	}
	pn := Normalize(p)
	qn := Normalize(q)
	var d float64
	for i := range pn {
		if diff := math.Abs(pn[i] - qn[i]); diff > d {
			d = diff
		}
	}
	return d
}

// AlignShares builds two index-aligned share vectors from keyed maps,
// using the union of keys in deterministic (sorted) order. Missing keys
// contribute zero — the paper maps organizations absent from one dataset
// to 0 before computing distances and correlations.
func AlignShares(p, q map[string]float64) (ps, qs []float64, keys []string) {
	seen := map[string]bool{}
	for k := range p {
		seen[k] = true
	}
	for k := range q {
		seen[k] = true
	}
	keys = make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ps = make([]float64, len(keys))
	qs = make([]float64, len(keys))
	for i, k := range keys {
		ps[i] = p[k]
		qs[i] = q[k]
	}
	return ps, qs, keys
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF over xs. The input is copied.
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns F(x) = P(X ≤ x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile of the underlying sample.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(e.sorted, q)
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Points returns (x, F(x)) pairs at each distinct sample value, suitable
// for plotting a CDF curve like the paper's Figures 8, 10 and 12.
func (e *ECDF) Points() (xs, fs []float64) {
	n := len(e.sorted)
	for i := 0; i < n; {
		j := i
		for j+1 < n && e.sorted[j+1] == e.sorted[i] {
			j++
		}
		xs = append(xs, e.sorted[i])
		fs = append(fs, float64(j+1)/float64(n))
		i = j + 1
	}
	return xs, fs
}
