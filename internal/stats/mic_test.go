package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func micSample(s *rng.Stream, n int, f func(x float64) float64, noise float64) ([]float64, []float64) {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = s.Range(0, 1)
		ys[i] = f(xs[i]) + s.Norm(0, noise)
	}
	return xs, ys
}

func TestMICLinearNoiseless(t *testing.T) {
	s := rng.New(1)
	xs, ys := micSample(s, 400, func(x float64) float64 { return 2*x + 1 }, 0)
	if v := MIC(xs, ys); v < 0.9 {
		t.Fatalf("MIC of noiseless linear = %v, want ≈1", v)
	}
}

func TestMICNonlinearNoiseless(t *testing.T) {
	// MIC's raison d'être: detects non-monotone functional relationships
	// that Pearson misses entirely.
	s := rng.New(2)
	xs, ys := micSample(s, 400, func(x float64) float64 { return math.Sin(4 * math.Pi * x) }, 0)
	micV := MIC(xs, ys)
	pear := math.Abs(Pearson(xs, ys))
	if micV < 0.6 {
		t.Fatalf("MIC of noiseless sine = %v, want high", micV)
	}
	if micV <= pear {
		t.Fatalf("MIC (%v) should beat |Pearson| (%v) on a sine", micV, pear)
	}
}

func TestMICIndependent(t *testing.T) {
	s := rng.New(3)
	n := 500
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = s.Float64()
		ys[i] = s.Float64()
	}
	if v := MIC(xs, ys); v > 0.35 {
		t.Fatalf("MIC of independent data = %v, want low", v)
	}
}

func TestMICNoiseMonotone(t *testing.T) {
	// More noise must not increase MIC (up to sampling wobble).
	s := rng.New(4)
	xs1, ys1 := micSample(s.Split("clean"), 400, func(x float64) float64 { return x }, 0.01)
	xs2, ys2 := micSample(s.Split("noisy"), 400, func(x float64) float64 { return x }, 1.0)
	clean := MIC(xs1, ys1)
	noisy := MIC(xs2, ys2)
	if noisy > clean {
		t.Fatalf("noisy MIC (%v) exceeds clean MIC (%v)", noisy, clean)
	}
}

func TestMICBoundsAndEdgeCases(t *testing.T) {
	if !math.IsNaN(MIC([]float64{1, 2}, []float64{1, 2})) {
		t.Fatal("MIC with < 4 points should be NaN")
	}
	if !math.IsNaN(MIC([]float64{1, 2, 3}, []float64{1, 2})) {
		t.Fatal("MIC with mismatched lengths should be NaN")
	}
	s := rng.New(5)
	xs, ys := micSample(s, 100, func(x float64) float64 { return x * x }, 0.1)
	v := MIC(xs, ys)
	if v < 0 || v > 1 {
		t.Fatalf("MIC out of [0,1]: %v", v)
	}
}

func TestMICSymmetry(t *testing.T) {
	s := rng.New(6)
	xs, ys := micSample(s, 200, func(x float64) float64 { return x * x }, 0.05)
	a := MIC(xs, ys)
	b := MIC(ys, xs)
	// Equal-frequency binning on both axes makes the approximation
	// symmetric up to tie handling.
	if math.Abs(a-b) > 0.15 {
		t.Fatalf("MIC asymmetry too large: %v vs %v", a, b)
	}
}

func TestMICMulti(t *testing.T) {
	s := rng.New(7)
	n := 300
	target := make([]float64, n)
	good := make([]float64, n)
	junk := make([]float64, n)
	for i := range target {
		good[i] = s.Float64()
		target[i] = good[i] + s.Norm(0, 0.05)
		junk[i] = s.Float64()
	}
	alone := MICMulti(target, junk)
	both := MICMulti(target, junk, good)
	if both <= alone {
		t.Fatalf("adding an informative predictor should raise MICMulti: %v vs %v", both, alone)
	}
	if !math.IsNaN(MICMulti(target)) {
		t.Fatal("MICMulti with no predictors should be NaN")
	}
}

func TestEqualFreqBins(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	bins := equalFreqBins(xs, 4)
	counts := map[int]int{}
	for _, b := range bins {
		if b < 0 || b >= 4 {
			t.Fatalf("bin out of range: %d", b)
		}
		counts[b]++
	}
	for b := 0; b < 4; b++ {
		if counts[b] == 0 {
			t.Fatalf("empty bin %d in equal-frequency binning of uniform data", b)
		}
	}
	// Identical values always share a bin.
	tied := []float64{5, 5, 5, 5, 1, 2}
	tb := equalFreqBins(tied, 3)
	for i := 1; i < 4; i++ {
		if tb[i] != tb[0] {
			t.Fatalf("tied values split across bins: %v", tb)
		}
	}
}

func BenchmarkMIC300(b *testing.B) {
	s := rng.New(1)
	xs, ys := micSample(s, 300, func(x float64) float64 { return x * x }, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MIC(xs, ys)
	}
}

func TestMICBudgetMonotoneInExponent(t *testing.T) {
	// Finer grids can only find more information on a functional
	// relationship (up to sampling wobble).
	s := rng.New(9)
	xs, ys := micSample(s, 300, func(x float64) float64 { return x * x }, 0.02)
	lo := MICBudget(xs, ys, 0.4)
	hi := MICBudget(xs, ys, 0.8)
	if hi < lo-0.05 {
		t.Fatalf("MIC at exponent 0.8 (%v) should not fall below exponent 0.4 (%v)", hi, lo)
	}
	if MIC(xs, ys) != MICBudget(xs, ys, 0.6) {
		t.Fatal("MIC must equal MICBudget at the canonical exponent")
	}
}
