package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	approx(t, Pearson(xs, ys), 1, 1e-12, "Pearson positive")
	neg := []float64{10, 8, 6, 4, 2}
	approx(t, Pearson(xs, neg), -1, 1e-12, "Pearson negative")
}

func TestPearsonKnownValue(t *testing.T) {
	// Hand-computed: sxy=16, sxx=17.5, syy=23.333 → r = 16/√408.33.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2, 1, 4, 3, 7, 5}
	approx(t, Pearson(xs, ys), 0.79179, 1e-4, "Pearson known")
}

func TestPearsonDegenerate(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Fatal("Pearson with zero x variance should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{2})) {
		t.Fatal("Pearson with one point should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 2}, []float64{1, 2, 3})) {
		t.Fatal("Pearson with mismatched lengths should be NaN")
	}
}

func TestWeightedPearsonUnitWeights(t *testing.T) {
	// With all-ones weights it must agree with the unweighted version.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2, 1, 4, 3, 7, 5}
	ws := []float64{1, 1, 1, 1, 1, 1}
	approx(t, WeightedPearson(xs, ys, ws), Pearson(xs, ys), 1e-12, "WeightedPearson unit weights")
}

func TestWeightedPearsonReplication(t *testing.T) {
	// An integer weight must behave exactly like repeating the point.
	xs := []float64{1, 2, 3}
	ys := []float64{1, 3, 2}
	ws := []float64{3, 1, 2}
	rep := Pearson([]float64{1, 1, 1, 2, 3, 3}, []float64{1, 1, 1, 3, 2, 2})
	approx(t, WeightedPearson(xs, ys, ws), rep, 1e-12, "WeightedPearson replication")
}

func TestWeightedPearsonIgnoresZeroWeight(t *testing.T) {
	// A zero-weight outlier must not move the statistic.
	xs := []float64{1, 2, 3, 100}
	ys := []float64{2, 4, 6, -50}
	ws := []float64{1, 1, 1, 0}
	approx(t, WeightedPearson(xs, ys, ws), 1, 1e-12, "WeightedPearson zero weight")
}

func TestWeightedPearsonDegenerate(t *testing.T) {
	if !math.IsNaN(WeightedPearson([]float64{1, 2}, []float64{1, 2}, []float64{1})) {
		t.Fatal("WeightedPearson with mismatched lengths should be NaN")
	}
	if !math.IsNaN(WeightedPearson([]float64{1, 2}, []float64{1, 2}, []float64{1, 0})) {
		t.Fatal("WeightedPearson with one positive weight should be NaN")
	}
	if !math.IsNaN(WeightedPearson([]float64{1, 1}, []float64{1, 2}, []float64{1, 1})) {
		t.Fatal("WeightedPearson with zero x variance should be NaN")
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		approx(t, got[i], want[i], 1e-12, "rank")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Spearman is 1 for any monotone relationship, even nonlinear.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	approx(t, Spearman(xs, ys), 1, 1e-12, "Spearman cubic")
}

// naiveKendall is an O(n²) tau-b reference used to validate the
// O(n log n) Knight implementation.
func naiveKendall(xs, ys []float64) float64 {
	n := len(xs)
	var conc, disc, tieX, tieY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			switch {
			case dx == 0 && dy == 0:
				// tied in both: excluded from all terms
			case dx == 0:
				tieX++
			case dy == 0:
				tieY++
			case dx*dy > 0:
				conc++
			default:
				disc++
			}
		}
	}
	denom := math.Sqrt((conc + disc + tieX) * (conc + disc + tieY))
	if denom == 0 {
		return math.NaN()
	}
	return (conc - disc) / denom
}

func TestKendallPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, KendallTau(xs, []float64{10, 20, 30, 40, 50}), 1, 1e-12, "tau concordant")
	approx(t, KendallTau(xs, []float64{50, 40, 30, 20, 10}), -1, 1e-12, "tau discordant")
}

func TestKendallKnownValue(t *testing.T) {
	// scipy.stats.kendalltau([12,2,1,12,2],[1,4,7,1,0]) = -0.4714045
	xs := []float64{12, 2, 1, 12, 2}
	ys := []float64{1, 4, 7, 1, 0}
	approx(t, KendallTau(xs, ys), -0.4714045, 1e-6, "tau-b with ties")
}

func TestKendallMatchesNaive(t *testing.T) {
	s := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		n := 3 + s.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			// Coarse grid forces plenty of ties.
			xs[i] = float64(s.Intn(6))
			ys[i] = float64(s.Intn(6))
		}
		want := naiveKendall(xs, ys)
		got := KendallTau(xs, ys)
		if math.IsNaN(want) != math.IsNaN(got) {
			t.Fatalf("trial %d: NaN mismatch: fast=%v naive=%v xs=%v ys=%v", trial, got, want, xs, ys)
		}
		if !math.IsNaN(want) && math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: fast=%v naive=%v xs=%v ys=%v", trial, got, want, xs, ys)
		}
	}
}

func TestKendallAllTied(t *testing.T) {
	if !math.IsNaN(KendallTau([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Fatal("tau with fully tied x should be NaN")
	}
}

func TestMergeCountSwaps(t *testing.T) {
	cases := []struct {
		in   []float64
		want int64
	}{
		{[]float64{1, 2, 3}, 0},
		{[]float64{3, 2, 1}, 3},
		{[]float64{2, 1, 3}, 1},
		{[]float64{1}, 0},
		{nil, 0},
	}
	for _, c := range cases {
		in := append([]float64(nil), c.in...)
		if got := mergeCountSwaps(in); got != c.want {
			t.Errorf("inversions(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

// Property: correlations are symmetric under exchanging the two variables.
func TestQuickCorrelationSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 5 + s.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = s.Norm(0, 1)
			ys[i] = s.Norm(0, 1)
		}
		p1, p2 := Pearson(xs, ys), Pearson(ys, xs)
		k1, k2 := KendallTau(xs, ys), KendallTau(ys, xs)
		return math.Abs(p1-p2) < 1e-12 && math.Abs(k1-k2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: correlations are invariant under positive affine transforms.
func TestQuickCorrelationAffineInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 5 + s.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		zs := make([]float64, n)
		for i := range xs {
			xs[i] = s.Norm(0, 1)
			ys[i] = s.Norm(0, 1)
			zs[i] = 3*ys[i] + 7 // positive affine transform of ys
		}
		p1, p2 := Pearson(xs, ys), Pearson(xs, zs)
		k1, k2 := KendallTau(xs, ys), KendallTau(xs, zs)
		return math.Abs(p1-p2) < 1e-9 && math.Abs(k1-k2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: tau is always in [-1, 1] when defined.
func TestQuickKendallBounds(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 2 + s.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(s.Intn(8))
			ys[i] = float64(s.Intn(8))
		}
		tau := KendallTau(xs, ys)
		return math.IsNaN(tau) || (tau >= -1-1e-12 && tau <= 1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKendallTau1000(b *testing.B) {
	s := rng.New(1)
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = s.Float64()
		ys[i] = s.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KendallTau(xs, ys)
	}
}
