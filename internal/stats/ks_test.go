package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestKSTwoSampleIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, KSTwoSample(xs, xs), 0, 1e-12, "KS identical")
}

func TestKSTwoSampleDisjoint(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{10, 11, 12}
	approx(t, KSTwoSample(xs, ys), 1, 1e-12, "KS disjoint")
}

func TestKSTwoSampleKnown(t *testing.T) {
	// scipy.stats.ks_2samp([1,2,3,4],[3,4,5,6]).statistic = 0.5
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 4, 5, 6}
	approx(t, KSTwoSample(xs, ys), 0.5, 1e-12, "KS known")
}

func TestKSTwoSampleEmpty(t *testing.T) {
	if !math.IsNaN(KSTwoSample(nil, []float64{1})) {
		t.Fatal("KS with empty sample should be NaN")
	}
}

func TestKSCategorical(t *testing.T) {
	p := []float64{0.5, 0.3, 0.2}
	approx(t, KSCategorical(p, p), 0, 1e-12, "identical distributions")

	q := []float64{0.3, 0.5, 0.2} // 20-point swap between first two orgs
	approx(t, KSCategorical(p, q), 0.2, 1e-12, "swap distance")

	// Unnormalized inputs are normalized internally.
	approx(t, KSCategorical([]float64{5, 3, 2}, []float64{3, 5, 2}), 0.2, 1e-12, "unnormalized")
}

func TestKSCategoricalMismatch(t *testing.T) {
	if !math.IsNaN(KSCategorical([]float64{1}, []float64{1, 2})) {
		t.Fatal("mismatched lengths should be NaN")
	}
}

func TestMaxShareDiff(t *testing.T) {
	p := []float64{0.7, 0.2, 0.1}
	q := []float64{0.4, 0.5, 0.1}
	approx(t, MaxShareDiff(p, q), 0.3, 1e-12, "L-inf distance")
	approx(t, MaxShareDiff(p, p), 0, 1e-12, "identical")
}

func TestAlignShares(t *testing.T) {
	p := map[string]float64{"a": 0.6, "b": 0.4}
	q := map[string]float64{"b": 0.5, "c": 0.5}
	ps, qs, keys := AlignShares(p, q)
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
	wantP := []float64{0.6, 0.4, 0}
	wantQ := []float64{0, 0.5, 0.5}
	for i := range keys {
		approx(t, ps[i], wantP[i], 0, "aligned p")
		approx(t, qs[i], wantQ[i], 0, "aligned q")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	approx(t, e.At(0), 0, 1e-12, "F(0)")
	approx(t, e.At(1), 0.25, 1e-12, "F(1)")
	approx(t, e.At(2), 0.75, 1e-12, "F(2)")
	approx(t, e.At(3), 1, 1e-12, "F(3)")
	approx(t, e.At(10), 1, 1e-12, "F(10)")
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 2})
	xs, fs := e.Points()
	if len(xs) != 3 {
		t.Fatalf("distinct points = %d, want 3", len(xs))
	}
	approx(t, xs[1], 2, 0, "x point")
	approx(t, fs[1], 0.75, 1e-12, "F at duplicate")
	approx(t, fs[2], 1, 1e-12, "final F")
}

// Property: KS statistics are symmetric and within [0, 1].
func TestQuickKSSymmetricBounded(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		na, nb := 1+s.Intn(40), 1+s.Intn(40)
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = s.Norm(0, 1)
		}
		for i := range b {
			b[i] = s.Norm(0.5, 1)
		}
		d1 := KSTwoSample(a, b)
		d2 := KSTwoSample(b, a)
		return d1 >= 0 && d1 <= 1 && math.Abs(d1-d2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the categorical KS distance satisfies the triangle inequality.
func TestQuickKSCategoricalTriangle(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 2 + s.Intn(10)
		mk := func() []float64 {
			v := make([]float64, n)
			for i := range v {
				v[i] = s.Float64() + 0.01
			}
			return v
		}
		p, q, r := mk(), mk(), mk()
		dpq := KSCategorical(p, q)
		dqr := KSCategorical(q, r)
		dpr := KSCategorical(p, r)
		return dpr <= dpq+dqr+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ECDF is monotone non-decreasing.
func TestQuickECDFMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 1 + s.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = s.Norm(0, 5)
		}
		e := NewECDF(xs)
		prev := -1.0
		for x := -15.0; x <= 15; x += 0.5 {
			v := e.At(x)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
