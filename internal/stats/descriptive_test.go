package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.IsNaN(want) {
		if !math.IsNaN(got) {
			t.Errorf("%s = %v, want NaN", name, got)
		}
		return
	}
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "Mean")
	approx(t, Variance(xs), 32.0/7.0, 1e-12, "Variance")
	approx(t, StdDev(xs), math.Sqrt(32.0/7.0), 1e-12, "StdDev")
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of single point should be NaN")
	}
}

func TestSumKahan(t *testing.T) {
	// 1 + 1e-16 repeated: naive summation loses the small terms.
	xs := make([]float64, 0, 1001)
	xs = append(xs, 1)
	for i := 0; i < 1000; i++ {
		xs = append(xs, 1e-16)
	}
	got := Sum(xs)
	want := 1 + 1000e-16
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("compensated sum = %.20f, want %.20f", got, want)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, Quantile(xs, 0), 1, 0, "q0")
	approx(t, Quantile(xs, 1), 5, 0, "q1")
	approx(t, Quantile(xs, 0.5), 3, 0, "median")
	approx(t, Quantile(xs, 0.25), 2, 0, "q25")
	approx(t, Quantile(xs, 0.1), 1.4, 1e-12, "q10 interpolated")
}

func TestQuantileUnsortedInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	approx(t, Median(xs), 3, 0, "median of unsorted")
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	approx(t, Min(xs), -1, 0, "Min")
	approx(t, Max(xs), 7, 0, "Max")
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("Min/Max of empty should be NaN")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{1, 3})
	approx(t, out[0], 0.25, 1e-12, "normalize[0]")
	approx(t, out[1], 0.75, 1e-12, "normalize[1]")
	zero := Normalize([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("Normalize of zero vector should be zero vector")
	}
}

func TestHHI(t *testing.T) {
	approx(t, HHI([]float64{1, 0, 0}), 1, 1e-12, "monopoly HHI")
	approx(t, HHI([]float64{1, 1, 1, 1}), 0.25, 1e-12, "uniform HHI")
}

func TestGini(t *testing.T) {
	approx(t, Gini([]float64{1, 1, 1, 1}), 0, 1e-12, "uniform Gini")
	g := Gini([]float64{0, 0, 0, 100})
	if g < 0.7 {
		t.Fatalf("concentrated Gini = %v, want high", g)
	}
	if Gini([]float64{0, 0}) != 0 {
		t.Fatal("all-zero Gini should be 0")
	}
}

func TestCoverCount(t *testing.T) {
	// 50/30/15/5: 95% needs 3 orgs, 50% needs 1, 100% needs all 4.
	shares := []float64{5, 50, 15, 30}
	if got := CoverCount(shares, 0.95); got != 3 {
		t.Errorf("CoverCount 95%% = %d, want 3", got)
	}
	if got := CoverCount(shares, 0.5); got != 1 {
		t.Errorf("CoverCount 50%% = %d, want 1", got)
	}
	if got := CoverCount(shares, 1.0); got != 4 {
		t.Errorf("CoverCount 100%% = %d, want 4", got)
	}
	if got := CoverCount(nil, 0.95); got != 0 {
		t.Errorf("CoverCount empty = %d, want 0", got)
	}
	if got := CoverCount([]float64{0, 0}, 0.95); got != 0 {
		t.Errorf("CoverCount zero mass = %d, want 0", got)
	}
}

// Property: CoverCount is monotone in the coverage fraction.
func TestQuickCoverCountMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			raw[i] = math.Abs(raw[i])
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 1
			}
		}
		return CoverCount(raw, 0.5) <= CoverCount(raw, 0.95)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Normalize output sums to ~1 for any vector with positive mass.
func TestQuickNormalizeSums(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			raw[i] = math.Abs(raw[i])
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) || raw[i] > 1e12 {
				raw[i] = 1
			}
		}
		raw[0] += 1
		s := Sum(Normalize(raw))
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
