package stats

import (
	"math"
	"sync"
)

// Special-function plumbing for Student-t confidence intervals, implemented
// with the classic Numerical-Recipes incomplete-beta continued fraction.

// lnGamma is math.Lgamma without the sign (arguments here are positive).
func lnGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaIncomplete returns the regularized incomplete beta function I_x(a, b).
func betaIncomplete(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lnGamma(a+b) - lnGamma(a) - lnGamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// TCDF returns P(T ≤ t) for a Student-t distribution with nu degrees of
// freedom.
func TCDF(t, nu float64) float64 {
	if nu <= 0 {
		return math.NaN()
	}
	if t == 0 {
		return 0.5
	}
	x := nu / (nu + t*t)
	p := 0.5 * betaIncomplete(nu/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// tqKey identifies one quantile evaluation for the memo table.
type tqKey struct{ p, nu float64 }

// tqMemo caches TQuantile results. The bisection runs 200 TCDF
// evaluations (each a continued-fraction expansion), and callers ask for
// the same handful of (confidence level, degrees-of-freedom) pairs over
// and over across regression fits, so the hit rate is effectively 100%
// after warm-up.
var tqMemo sync.Map // tqKey -> float64

// TQuantile returns the p-th quantile of a Student-t distribution with nu
// degrees of freedom (the inverse of TCDF), computed by bisection.
// Typical use: TQuantile(0.975, n-2) for a two-sided 95% interval.
// Results are memoized; the set of distinct (p, nu) pairs in any run is
// small and the table never needs eviction.
func TQuantile(p, nu float64) float64 {
	if nu <= 0 || p <= 0 || p >= 1 {
		return math.NaN()
	}
	if p == 0.5 {
		return 0
	}
	k := tqKey{p: p, nu: nu}
	if v, ok := tqMemo.Load(k); ok {
		return v.(float64)
	}
	lo, hi := -1e3, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, nu) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	v := (lo + hi) / 2
	tqMemo.Store(k, v)
	return v
}

// NormalCDF returns the standard normal CDF Φ(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
