package stats

import (
	"math"
	"sort"
)

// Pearson returns the Pearson product-moment correlation of (xs, ys).
// It returns NaN if the inputs differ in length, have fewer than two
// points, or either side has zero variance.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// WeightedPearson returns the Pearson correlation of (xs, ys) where each
// point carries weight ws[i] — e.g. a binned summary where each bin
// aggregates a different number of underlying observations. It returns
// NaN if the lengths differ, fewer than two points carry positive
// weight, or either side has zero weighted variance.
func WeightedPearson(xs, ys, ws []float64) float64 {
	n := len(xs)
	if n != len(ys) || n != len(ws) || n < 2 {
		return math.NaN()
	}
	var w, mx, my float64
	positive := 0
	for i := 0; i < n; i++ {
		if ws[i] <= 0 {
			continue
		}
		positive++
		w += ws[i]
		mx += ws[i] * xs[i]
		my += ws[i] * ys[i]
	}
	if positive < 2 || w == 0 {
		return math.NaN()
	}
	mx /= w
	my /= w
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		if ws[i] <= 0 {
			continue
		}
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += ws[i] * dx * dy
		sxx += ws[i] * dx * dx
		syy += ws[i] * dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns Spearman's rank correlation: the Pearson correlation of
// the rank-transformed data, with average ranks assigned to ties.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns 1-based fractional ranks of xs, assigning tied values the
// average of the ranks they span (the "mid-rank" convention).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank of positions i..j (1-based).
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// KendallTau returns Kendall's tau-b rank correlation, which corrects for
// ties on both axes. It runs in O(n log n) using Knight's algorithm:
// sort by (x, y), count tie groups, and count discordant swaps with a
// merge sort over y. Tau-b is what the paper uses to compare per-country
// organization rankings between the APNIC and CDN datasets.
//
// It returns NaN if the inputs differ in length, have fewer than two
// points, or either axis is entirely tied.
func KendallTau(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if xs[idx[a]] != xs[idx[b]] {
			return xs[idx[a]] < xs[idx[b]]
		}
		return ys[idx[a]] < ys[idx[b]]
	})

	y := make([]float64, n)
	x := make([]float64, n)
	for i, id := range idx {
		x[i] = xs[id]
		y[i] = ys[id]
	}

	n0 := float64(n) * float64(n-1) / 2

	// n1: pairs tied in x; n3: pairs tied in both x and y.
	var n1, n3 float64
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[j+1] == x[i] {
			j++
		}
		t := float64(j - i + 1)
		n1 += t * (t - 1) / 2
		// Within the x-tie group, count y ties (group is y-sorted).
		for a := i; a <= j; {
			b := a
			for b+1 <= j && y[b+1] == y[a] {
				b++
			}
			u := float64(b - a + 1)
			n3 += u * (u - 1) / 2
			a = b + 1
		}
		i = j + 1
	}

	// Count swaps needed to sort y (equivalent to discordant pairs among
	// pairs not tied in x).
	swaps := mergeCountSwaps(append([]float64(nil), y...))

	// n2: pairs tied in y, counted over the fully y-sorted sequence.
	ySorted := append([]float64(nil), y...)
	sort.Float64s(ySorted)
	var n2 float64
	for i := 0; i < n; {
		j := i
		for j+1 < n && ySorted[j+1] == ySorted[i] {
			j++
		}
		u := float64(j - i + 1)
		n2 += u * (u - 1) / 2
		i = j + 1
	}

	denom := math.Sqrt((n0 - n1) * (n0 - n2))
	if denom == 0 {
		return math.NaN()
	}
	s := n0 - n1 - n2 + n3 - 2*float64(swaps)
	return s / denom
}

// mergeCountSwaps sorts ys in place and returns the number of exchanges a
// bubble sort would need — i.e. the number of inversions.
func mergeCountSwaps(ys []float64) int64 {
	n := len(ys)
	if n < 2 {
		return 0
	}
	buf := make([]float64, n)
	var rec func(lo, hi int) int64
	rec = func(lo, hi int) int64 {
		if hi-lo < 2 {
			return 0
		}
		mid := (lo + hi) / 2
		inv := rec(lo, mid) + rec(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if ys[i] <= ys[j] {
				buf[k] = ys[i]
				i++
			} else {
				buf[k] = ys[j]
				j++
				inv += int64(mid - i)
			}
			k++
		}
		for i < mid {
			buf[k] = ys[i]
			i++
			k++
		}
		for j < hi {
			buf[k] = ys[j]
			j++
			k++
		}
		copy(ys[lo:hi], buf[lo:hi])
		return inv
	}
	return rec(0, n)
}
