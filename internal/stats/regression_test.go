package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestLinearRegressionExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	fit := LinearRegression(xs, ys)
	approx(t, fit.Slope, 2, 1e-12, "slope")
	approx(t, fit.Intercept, 1, 1e-12, "intercept")
	approx(t, fit.R2, 1, 1e-12, "R2")
	approx(t, fit.ResidualSE, 0, 1e-9, "residual SE")
	if !fit.Ok() {
		t.Fatal("fit should be Ok")
	}
}

func TestLinearRegressionKnown(t *testing.T) {
	// Hand-computed: x=[1..5], y=[2,1,4,3,7] → slope=12/10=1.2,
	// intercept=3.4−3.6=−0.2, SSres=6.8, SStot=21.2 → R²=0.67925,
	// s=√(6.8/3)=1.5055 → SE(slope)=s/√10=0.47610.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 1, 4, 3, 7}
	fit := LinearRegression(xs, ys)
	approx(t, fit.Slope, 1.2, 1e-9, "slope")
	approx(t, fit.Intercept, -0.2, 1e-9, "intercept")
	approx(t, fit.R2, 0.67925, 1e-4, "R2")
	approx(t, fit.SlopeSE, 0.47610, 1e-4, "slope SE")
}

func TestLinearRegressionDegenerate(t *testing.T) {
	fit := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3})
	if fit.Ok() {
		t.Fatal("fit with zero x variance should not be Ok")
	}
	fit = LinearRegression([]float64{1}, []float64{2})
	if fit.Ok() {
		t.Fatal("single-point fit should not be Ok")
	}
}

func TestPredictionIntervalWidens(t *testing.T) {
	s := rng.New(5)
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2*xs[i] + s.Norm(0, 1)
	}
	fit := LinearRegression(xs, ys)
	atCenter := fit.PredictionInterval(fit.XMean, 0.95)
	atEdge := fit.PredictionInterval(fit.XMean+100, 0.95)
	if !(atEdge > atCenter) {
		t.Fatalf("prediction interval should widen away from x̄: center=%v edge=%v", atCenter, atEdge)
	}
	if atCenter <= 0 {
		t.Fatalf("interval half-width must be positive, got %v", atCenter)
	}
}

func TestPredictionIntervalCoverage(t *testing.T) {
	// ~95% of new points drawn from the true model must fall inside the
	// 95% prediction band.
	s := rng.New(7)
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = s.Range(0, 10)
		ys[i] = 3 + 0.5*xs[i] + s.Norm(0, 2)
	}
	fit := LinearRegression(xs, ys)
	inside := 0
	trials := 2000
	for i := 0; i < trials; i++ {
		x := s.Range(0, 10)
		y := 3 + 0.5*x + s.Norm(0, 2)
		hw := fit.PredictionInterval(x, 0.95)
		if math.Abs(y-fit.Predict(x)) <= hw {
			inside++
		}
	}
	cov := float64(inside) / float64(trials)
	if cov < 0.92 || cov > 0.98 {
		t.Fatalf("95%% prediction interval coverage = %v", cov)
	}
}

func TestR2Identity(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	approx(t, R2Identity(xs, xs), 1, 1e-12, "identity on itself")

	// Slight noise: still high.
	ys := []float64{1.1, 1.9, 3.05, 4.0}
	if v := R2Identity(xs, ys); v < 0.9 {
		t.Fatalf("near-identity R2 = %v, want > 0.9", v)
	}

	// Anti-correlated data: the 1:1 model is worse than the mean → negative.
	anti := []float64{4, 3, 2, 1}
	if v := R2Identity(xs, anti); v >= 0 {
		t.Fatalf("anti-correlated identity R2 = %v, want negative", v)
	}
}

func TestElasticityRecoversExponent(t *testing.T) {
	// y = 3 * x^0.9 with mild noise: β̂ must be ≈ 0.9 — the shape of the
	// paper's Figure 6 fit.
	s := rng.New(11)
	n := 150
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = math.Pow(10, s.Range(2, 8))
		ys[i] = 3 * math.Pow(xs[i], 0.9) * s.LogNormal(0, 0.1)
	}
	fit := Elasticity(xs, ys, 0.95)
	approx(t, fit.Beta, 0.9, 0.03, "elasticity beta")
	if fit.Used != n || fit.Discarded != 0 {
		t.Fatalf("used=%d discarded=%d", fit.Used, fit.Discarded)
	}
}

func TestElasticityFiltersNonPositive(t *testing.T) {
	fit := Elasticity([]float64{10, 0, -5, 100}, []float64{20, 5, 5, 200}, 0.95)
	if fit.Used != 2 || fit.Discarded != 2 {
		t.Fatalf("used=%d discarded=%d, want 2/2", fit.Used, fit.Discarded)
	}
}

func TestElasticityOutlierDetection(t *testing.T) {
	s := rng.New(13)
	n := 120
	xs := make([]float64, 0, n+1)
	ys := make([]float64, 0, n+1)
	for i := 0; i < n; i++ {
		x := math.Pow(10, s.Range(3, 7))
		xs = append(xs, x)
		ys = append(ys, 2*math.Pow(x, 1.0)*s.LogNormal(0, 0.05))
	}
	fit := Elasticity(xs, ys, 0.95)
	// A country whose samples "weigh" 100× the norm sits far above the band.
	if !fit.Above(1e4, 2*1e4*100) {
		t.Fatal("gross over-weighting not flagged Above")
	}
	if fit.Above(1e4, 2*1e4) {
		t.Fatal("on-trend point wrongly flagged Above")
	}
	if !fit.Below(1e4, 2*1e4/100) {
		t.Fatal("gross under-weighting not flagged Below")
	}
}

func TestElasticityOutliersIndices(t *testing.T) {
	s := rng.New(17)
	xs := make([]float64, 0, 101)
	ys := make([]float64, 0, 101)
	for i := 0; i < 100; i++ {
		x := math.Pow(10, s.Range(3, 7))
		xs = append(xs, x)
		ys = append(ys, math.Pow(x, 1.0)*s.LogNormal(0, 0.05))
	}
	// Append one gross outlier.
	xs = append(xs, 1e5)
	ys = append(ys, 1e5*1000)
	fit := Elasticity(xs, ys, 0.95)
	out := fit.Outliers()
	found := false
	for _, i := range out {
		if i == 100 {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted outlier not in Outliers(): %v", out)
	}
	if len(out) > 12 {
		t.Fatalf("too many outliers flagged at 95%%: %d", len(out))
	}
}

func TestTQuantile(t *testing.T) {
	// Known values: t_{0.975, 10} = 2.2281, t_{0.975, 30} = 2.0423,
	// t_{0.95, 5} = 2.0150; large nu approaches the normal 1.95996.
	approx(t, TQuantile(0.975, 10), 2.2281, 1e-3, "t(0.975,10)")
	approx(t, TQuantile(0.975, 30), 2.0423, 1e-3, "t(0.975,30)")
	approx(t, TQuantile(0.95, 5), 2.0150, 1e-3, "t(0.95,5)")
	approx(t, TQuantile(0.975, 1e6), 1.95996, 1e-3, "t→normal")
	approx(t, TQuantile(0.5, 7), 0, 1e-9, "median of t is 0")
}

func TestTCDFSymmetry(t *testing.T) {
	for _, nu := range []float64{1, 5, 30} {
		for _, x := range []float64{0.5, 1, 2.5} {
			lo := TCDF(-x, nu)
			hi := TCDF(x, nu)
			approx(t, lo+hi, 1, 1e-9, "t CDF symmetry")
		}
	}
}

func TestNormalCDF(t *testing.T) {
	approx(t, NormalCDF(0), 0.5, 1e-12, "Phi(0)")
	approx(t, NormalCDF(1.959964), 0.975, 1e-5, "Phi(1.96)")
	approx(t, NormalCDF(-1.959964), 0.025, 1e-5, "Phi(-1.96)")
}

// Property: TCDF and TQuantile are inverse functions.
func TestQuickTQuantileRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		p := s.Range(0.02, 0.98)
		nu := s.Range(2, 100)
		q := TQuantile(p, nu)
		return math.Abs(TCDF(q, nu)-p) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: regression residuals are orthogonal to the regressor
// (the defining normal equation of OLS).
func TestQuickOLSNormalEquations(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 5 + s.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = s.Norm(0, 3)
			ys[i] = s.Norm(0, 3)
		}
		fit := LinearRegression(xs, ys)
		if !fit.Ok() {
			return true
		}
		var sumR, sumRX float64
		for i := range xs {
			r := ys[i] - fit.Predict(xs[i])
			sumR += r
			sumRX += r * xs[i]
		}
		scale := float64(n)
		return math.Abs(sumR)/scale < 1e-8 && math.Abs(sumRX)/scale < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOLS2Exact(t *testing.T) {
	// y = 2 + 3*x1 - 1.5*x2 exactly.
	s := rng.New(21)
	var x1, x2, ys []float64
	for i := 0; i < 50; i++ {
		a := s.Norm(0, 2)
		b := s.Norm(0, 2)
		x1 = append(x1, a)
		x2 = append(x2, b)
		ys = append(ys, 2+3*a-1.5*b)
	}
	b0, b1, b2, ok := OLS2(x1, x2, ys)
	if !ok {
		t.Fatal("fit failed")
	}
	approx(t, b0, 2, 1e-9, "b0")
	approx(t, b1, 3, 1e-9, "b1")
	approx(t, b2, -1.5, 1e-9, "b2")
}

func TestOLS2Degenerate(t *testing.T) {
	// Collinear regressors must fail cleanly.
	x1 := []float64{1, 2, 3, 4, 5}
	x2 := []float64{2, 4, 6, 8, 10} // 2*x1
	ys := []float64{1, 2, 3, 4, 5}
	if _, _, _, ok := OLS2(x1, x2, ys); ok {
		t.Fatal("collinear fit should fail")
	}
	if _, _, _, ok := OLS2(x1[:2], x2[:2], ys[:2]); ok {
		t.Fatal("tiny fit should fail")
	}
	if _, _, _, ok := OLS2(x1, x2[:3], ys); ok {
		t.Fatal("mismatched lengths should fail")
	}
}

// Property: OLS2 residuals are orthogonal to both regressors.
func TestQuickOLS2NormalEquations(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 10 + s.Intn(40)
		var x1, x2, ys []float64
		for i := 0; i < n; i++ {
			x1 = append(x1, s.Norm(0, 2))
			x2 = append(x2, s.Norm(0, 2))
			ys = append(ys, s.Norm(0, 2))
		}
		b0, b1, b2, ok := OLS2(x1, x2, ys)
		if !ok {
			return true
		}
		var r1, r2 float64
		for i := 0; i < n; i++ {
			r := ys[i] - (b0 + b1*x1[i] + b2*x2[i])
			r1 += r * x1[i]
			r2 += r * x2[i]
		}
		return math.Abs(r1)/float64(n) < 1e-7 && math.Abs(r2)/float64(n) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
