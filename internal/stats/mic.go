package stats

import (
	"math"
	"sort"
)

// MIC returns an approximation of the Maximal Information Coefficient of
// Reshef et al. (2011), the statistic the paper uses in §5.3 to measure
// how much information APNIC user estimates (optionally combined with IXP
// capacity) carry about CDN traffic volume when the relationship need not
// be linear.
//
// The exact MINE algorithm searches all grid partitions; this
// implementation uses the standard equal-frequency-binning approximation:
// for every grid shape (a, b) with a*b ≤ n^0.6, discretize each axis into
// equal-frequency bins, compute the mutual information of the discretized
// pair, normalize by log(min(a, b)), and take the maximum over shapes.
// The approximation preserves MIC's defining properties — ≈1 for
// noiseless functional relationships (linear or not), ≈0 for independent
// data — which is all the paper's comparison needs.
//
// It returns NaN for fewer than four points or mismatched input lengths.
func MIC(xs, ys []float64) float64 {
	return MICBudget(xs, ys, 0.6)
}

// MICBudget is MIC with an explicit grid-budget exponent: grids of shape
// (a, b) with a*b ≤ n^exponent are searched. The canonical value is 0.6;
// the exponent is exposed for the ablation study of grid resolution.
func MICBudget(xs, ys []float64, exponent float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 4 {
		return math.NaN()
	}
	// B(n) = n^exponent, floored at 4 so that at least 2x2 grids are
	// always searched.
	budget := int(math.Pow(float64(n), exponent))
	if budget < 4 {
		budget = 4
	}
	best := 0.0
	for a := 2; a <= budget/2; a++ {
		maxB := budget / a
		if maxB < 2 {
			break
		}
		xbins := equalFreqBins(xs, a)
		for b := 2; b <= maxB; b++ {
			ybins := equalFreqBins(ys, b)
			mi := mutualInformation(xbins, ybins, a, b)
			norm := math.Log(float64(minInt(a, b)))
			if norm <= 0 {
				continue
			}
			if v := mi / norm; v > best {
				best = v
			}
		}
	}
	if best > 1 {
		best = 1 // guard against floating point overshoot
	}
	return best
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// equalFreqBins assigns each value in xs to one of k equal-frequency bins
// and returns the per-point bin indices. Ties at bin boundaries go to the
// lower bin so identical values share a bin.
func equalFreqBins(xs []float64, k int) []int {
	n := len(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	// Bin upper edges at the k-1 interior quantiles.
	edges := make([]float64, k-1)
	for i := 1; i < k; i++ {
		edges[i-1] = quantileSorted(sorted, float64(i)/float64(k))
	}
	bins := make([]int, n)
	for i, x := range xs {
		b := sort.SearchFloat64s(edges, x)
		// SearchFloat64s returns the first edge ≥ x; values equal to an
		// edge land below it, keeping ties together.
		if b > k-1 {
			b = k - 1
		}
		bins[i] = b
	}
	return bins
}

// mutualInformation computes I(X;Y) in nats from per-point bin labels.
func mutualInformation(xbins, ybins []int, a, b int) float64 {
	n := len(xbins)
	joint := make([]float64, a*b)
	px := make([]float64, a)
	py := make([]float64, b)
	for i := 0; i < n; i++ {
		joint[xbins[i]*b+ybins[i]]++
		px[xbins[i]]++
		py[ybins[i]]++
	}
	inv := 1 / float64(n)
	var mi float64
	for x := 0; x < a; x++ {
		for y := 0; y < b; y++ {
			j := joint[x*b+y] * inv
			if j == 0 {
				continue
			}
			mi += j * math.Log(j/(px[x]*inv*py[y]*inv))
		}
	}
	if mi < 0 {
		mi = 0 // numerical noise
	}
	return mi
}

// MICMulti returns the best MIC between target and any single predictor,
// mirroring the paper's use of "APNIC alone" vs "APNIC + IXP capacity":
// adding a predictor can only increase the maximal information available.
func MICMulti(target []float64, predictors ...[]float64) float64 {
	best := math.NaN()
	for _, p := range predictors {
		v := MIC(p, target)
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(best) || v > best {
			best = v
		}
	}
	return best
}
