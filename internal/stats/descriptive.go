// Package stats implements the statistical machinery the paper's validation
// toolkit is built on: Pearson / Spearman / Kendall-Tau correlations, OLS
// linear regression with confidence and prediction intervals, log-log
// elasticity fits, two-sample Kolmogorov–Smirnov distances, empirical CDFs,
// and an approximation of the Maximal Information Coefficient (MIC).
//
// Everything is implemented from scratch on the standard library, favoring
// numerical robustness (compensated summation where it matters) and
// explicit handling of ties, which are pervasive in per-organization user
// share data.
package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs using Kahan compensated summation.
func Sum(xs []float64) float64 {
	var sum, c float64
	for _, x := range xs {
		y := x - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum
}

// SumMap adds a string-keyed map's values in sorted key order. Float
// addition is not associative, so summing in map-iteration order would
// make results differ in the last bits from run to run; every normalizer
// in the measurement simulators goes through here (or sorts the same way)
// to keep whole-pipeline outputs bit-reproducible.
func SumMap(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]float64, len(keys))
	for i, k := range keys {
		vals[i] = m[k]
	}
	return Sum(vals)
}

// NormalizeMap scales m in place so its values sum to 1, using SumMap's
// deterministic ordering. Maps with a non-positive total pass through
// unchanged. Returns m for convenience.
func NormalizeMap(m map[string]float64) map[string]float64 {
	total := SumMap(m)
	if total <= 0 {
		return m
	}
	for k := range m {
		m[k] /= total
	}
	return m
}

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance, or NaN if len < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the median of xs.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Normalize scales xs so it sums to 1 and returns the result as a new
// slice. If the sum is zero it returns a zero slice of the same length.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	total := Sum(xs)
	if total == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / total
	}
	return out
}

// HHI returns the Herfindahl–Hirschman concentration index of a share
// vector (shares need not be pre-normalized). 1 = monopoly, 1/n = uniform.
func HHI(shares []float64) float64 {
	p := Normalize(shares)
	var h float64
	for _, s := range p {
		h += s * s
	}
	return h
}

// Gini returns the Gini coefficient of non-negative values xs.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var cum, weighted float64
	for i, x := range s {
		weighted += float64(i+1) * x
		cum += x
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted/(float64(n)*cum) - float64(n+1)/float64(n))
}

// CoverCount returns the minimum number of the largest shares needed for
// their sum to reach frac of the total. This is the paper's "number of
// organizations needed to cover 95% of the population" metric (§6).
// It returns 0 when the total mass is zero.
func CoverCount(shares []float64, frac float64) int {
	s := append([]float64(nil), shares...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	total := Sum(s)
	if total <= 0 {
		return 0
	}
	target := frac * total
	var cum float64
	for i, v := range s {
		cum += v
		if cum >= target {
			return i + 1
		}
	}
	return len(s)
}
