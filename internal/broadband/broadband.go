// Package broadband simulates the Broadband Subscriber dataset (§3.3):
// per-ISP subscriber counts hand-collected from official disclosures and
// market surveys in 20 countries. Its defining properties, all modelled:
//
//   - It covers access networks only — pure mobile carriers, enterprise,
//     cloud and VPN networks are absent.
//   - It counts *subscriptions*, not users: one subscription covers a
//     household, and only the fixed-line side of a converged carrier.
//     This is why mobile-heavy carriers look overrepresented in APNIC
//     relative to this dataset (Figure 2's Telstra/KT/Jio outliers).
//   - Survey noise: countries covered by surveys rather than mandatory
//     disclosure carry extra sampling error.
package broadband

import (
	"sort"

	"repro/internal/dates"
	"repro/internal/orgs"
	"repro/internal/rng"
	"repro/internal/world"
)

// SurveyCountries is the fixed set of countries the paper hand-collected
// (Figure 2 covers 20 countries across 3+ continents).
var SurveyCountries = []string{
	"AT", "AU", "BR", "CA", "CH", "DE", "FI", "FR", "GB", "IN",
	"IT", "JP", "KR", "MX", "PL", "RU", "SE", "US", "ZA", "ES",
}

// chanSubs is the derivation channel key for the persistent per-org
// subscriber-survey noise stream.
const chanSubs uint64 = 1

// officialReport marks countries with mandatory-disclosure regimes whose
// numbers are nearly exact; the rest are looser market surveys.
var officialReport = map[string]bool{
	"AU": true, "CA": true, "DE": true, "FI": true, "FR": true,
	"GB": true, "JP": true, "KR": true, "SE": true, "US": true,
}

// Dataset is the collected survey: per country, each surveyed org's share
// of the country's broadband (fixed) subscribers, summing to 1.
type Dataset struct {
	Date   dates.Date
	Shares map[string]map[string]float64 // country -> orgID -> share
}

// Generator builds broadband datasets over a world.
type Generator struct {
	W    *world.World
	root *rng.Stream
}

// New returns a generator.
func New(w *world.World, seed uint64) *Generator {
	return &Generator{W: w, root: rng.New(seed).Split("broadband")}
}

// Generate collects the survey as of a date.
func (g *Generator) Generate(d dates.Date) *Dataset {
	ds := &Dataset{Date: d, Shares: map[string]map[string]float64{}}
	for _, cc := range SurveyCountries {
		m := g.W.Market(cc)
		if m == nil {
			continue
		}
		// Official-disclosure numbers are nearly exact; market surveys
		// (Statista-style panels of ~1300 respondents) carry substantial
		// per-ISP sampling error.
		sigma := 0.30
		if officialReport[cc] {
			sigma = 0.04
		}
		row := map[string]float64{}
		total := 0.0
		for _, e := range m.ActiveEntries(d) {
			if !e.Org.Type.IsAccess() {
				continue
			}
			fixedUsers := g.W.TrueUsers(cc, e.Org.ID, d) * (1 - e.MobileShare)
			subs := fixedUsers / m.Country.HouseholdSize
			if subs < 1000 {
				continue // below any survey's radar
			}
			ns := g.root.Derive(chanSubs, m.Key(), e.Key)
			noise := ns.LogNormal(0, sigma)
			row[e.Org.ID] = subs * noise
			total += row[e.Org.ID]
		}
		if total == 0 {
			continue
		}
		for k := range row {
			row[k] /= total
		}
		ds.Shares[cc] = row
	}
	return ds
}

// Countries returns the sorted countries present in the dataset.
func (ds *Dataset) Countries() []string {
	out := make([]string, 0, len(ds.Shares))
	for c := range ds.Shares {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Orgs returns the surveyed org IDs for a country, sorted by share
// descending.
func (ds *Dataset) Orgs(country string) []string {
	row := ds.Shares[country]
	out := make([]string, 0, len(row))
	for id := range row {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if row[out[i]] != row[out[j]] {
			return row[out[i]] > row[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// PairShares re-keys the dataset to (country, org) pairs.
func (ds *Dataset) PairShares() map[orgs.CountryOrg]float64 {
	out := map[orgs.CountryOrg]float64{}
	for c, row := range ds.Shares {
		for id, v := range row {
			out[orgs.CountryOrg{Country: c, Org: id}] = v
		}
	}
	return out
}
