package broadband

import (
	"math"
	"testing"

	"repro/internal/dates"
	"repro/internal/orgs"
	"repro/internal/world"
)

var testW = world.MustBuild(world.Config{Seed: 11})

func TestGenerateCoverage(t *testing.T) {
	ds := New(testW, 3).Generate(dates.New(2024, 3, 1))
	if len(ds.Shares) != len(SurveyCountries) {
		t.Fatalf("survey covers %d countries, want %d", len(ds.Shares), len(SurveyCountries))
	}
	for _, cc := range SurveyCountries {
		if len(ds.Shares[cc]) < 2 {
			t.Errorf("%s has %d surveyed orgs", cc, len(ds.Shares[cc]))
		}
	}
}

func TestSharesNormalized(t *testing.T) {
	ds := New(testW, 3).Generate(dates.New(2024, 3, 1))
	for cc, row := range ds.Shares {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s shares sum to %v", cc, sum)
		}
	}
}

func TestAccessNetworksOnly(t *testing.T) {
	ds := New(testW, 3).Generate(dates.New(2024, 3, 1))
	for cc, row := range ds.Shares {
		for id := range row {
			o, ok := testW.Registry.ByID(id)
			if !ok {
				t.Fatalf("unknown org %s in %s", id, cc)
			}
			if !o.Type.IsAccess() {
				t.Errorf("%s: non-access org %s (%v) surveyed", cc, id, o.Type)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	d := dates.New(2024, 3, 1)
	a := New(testW, 3).Generate(d)
	b := New(testW, 3).Generate(d)
	for cc, row := range a.Shares {
		for id, v := range row {
			if b.Shares[cc][id] != v {
				t.Fatalf("nondeterministic share for %s/%s", cc, id)
			}
		}
	}
}

func TestTracksFixedLineTruth(t *testing.T) {
	// Survey shares must correlate with the true fixed-user shares, not
	// total users — a converged carrier's mobile side is invisible.
	ds := New(testW, 3).Generate(dates.New(2024, 3, 1))
	d := dates.New(2024, 3, 1)
	for _, cc := range []string{"FR", "DE", "US"} {
		row := ds.Shares[cc]
		// True fixed-line shares over the surveyed orgs.
		truth := map[string]float64{}
		total := 0.0
		for id := range row {
			e := testW.Entry(cc, id)
			v := testW.TrueUsers(cc, id, d) * (1 - e.MobileShare)
			truth[id] = v
			total += v
		}
		for id := range truth {
			truth[id] /= total
		}
		// Largest surveyed org should match the largest true fixed org.
		argmax := func(m map[string]float64) string {
			best, bid := -1.0, ""
			for k, v := range m {
				if v > best {
					best, bid = v, k
				}
			}
			return bid
		}
		if argmax(row) != argmax(truth) {
			t.Errorf("%s: surveyed leader %s != true fixed leader %s", cc, argmax(row), argmax(truth))
		}
	}
}

func TestOrgsSorted(t *testing.T) {
	ds := New(testW, 3).Generate(dates.New(2024, 3, 1))
	ids := ds.Orgs("FR")
	row := ds.Shares["FR"]
	for i := 1; i < len(ids); i++ {
		if row[ids[i]] > row[ids[i-1]] {
			t.Fatal("Orgs not sorted by share")
		}
	}
}

func TestPairShares(t *testing.T) {
	ds := New(testW, 3).Generate(dates.New(2024, 3, 1))
	pairs := ds.PairShares()
	count := 0
	for k := range pairs {
		if k.Country == "FR" {
			count++
		}
	}
	if count != len(ds.Shares["FR"]) {
		t.Fatalf("pair count %d != row size %d", count, len(ds.Shares["FR"]))
	}
	if _, ok := pairs[orgs.CountryOrg{Country: "VU", Org: "anything"}]; ok {
		t.Fatal("non-survey country leaked into pairs")
	}
}

func TestCountriesSorted(t *testing.T) {
	ds := New(testW, 3).Generate(dates.New(2024, 3, 1))
	cs := ds.Countries()
	for i := 1; i < len(cs); i++ {
		if cs[i] < cs[i-1] {
			t.Fatal("Countries not sorted")
		}
	}
}
