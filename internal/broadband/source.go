package broadband

import (
	"fmt"
	"sort"

	"repro/internal/dates"
	"repro/internal/obsv"
	"repro/internal/source"
)

// DatasetName is the registry name of the broadband survey dataset.
const DatasetName = "broadband"

// Frame converts the survey to the uniform columnar form, one row per
// surveyed (country, org) pair sorted by country then org. Lossless:
// DatasetFromFrame reconstructs an equal dataset. Shares are always
// positive (zero-subscriber orgs never survive the survey floor), so the
// flat rows encode the nested map exactly.
func (ds *Dataset) Frame() *source.Frame {
	f := source.NewFrame(DatasetName, ds.Date)
	cc := f.AddStrings("CC")
	org := f.AddStrings("Org")
	share := f.AddFloats("Share")
	ccs := make([]string, 0, len(ds.Shares))
	for c := range ds.Shares {
		ccs = append(ccs, c)
	}
	sort.Strings(ccs)
	for _, c := range ccs {
		row := ds.Shares[c]
		ids := make([]string, 0, len(row))
		for id := range row {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			cc.Strs = append(cc.Strs, c)
			org.Strs = append(org.Strs, id)
			share.Floats = append(share.Floats, row[id])
		}
	}
	return f
}

// DatasetFromFrame reconstructs the native survey from its frame form.
func DatasetFromFrame(f *source.Frame) (*Dataset, error) {
	cc, org, share := f.Col("CC"), f.Col("Org"), f.Col("Share")
	if cc == nil || org == nil || share == nil {
		return nil, fmt.Errorf("broadband: frame is missing survey columns")
	}
	ds := &Dataset{Date: f.Date, Shares: map[string]map[string]float64{}}
	for i := 0; i < f.Rows(); i++ {
		row := ds.Shares[cc.Strs[i]]
		if row == nil {
			row = map[string]float64{}
			ds.Shares[cc.Strs[i]] = row
		}
		row[org.Strs[i]] = share.Floats[i]
	}
	return ds, nil
}

// Source adapts the generator to the uniform source interface, caching
// the native surveys day-keyed.
type Source struct {
	gen  *Generator
	days *source.Days[*Dataset]
}

// NewSource wraps a generator as a registrable source.
func NewSource(gen *Generator, metrics *obsv.Registry, cacheDays int) *Source {
	return &Source{
		gen:  gen,
		days: source.NewDays[*Dataset](metrics, "source", DatasetName, cacheDays),
	}
}

// Generator returns the wrapped generator.
func (s *Source) Generator() *Generator { return s.gen }

// Name implements source.Source.
func (s *Source) Name() string { return DatasetName }

// Window implements source.Source.
func (s *Source) Window() source.Window {
	return source.Window{First: source.SpanFirst, Last: source.SpanLast, Cadence: source.CadenceSurvey}
}

// Dataset returns the memoized native survey for a day.
func (s *Source) Dataset(d dates.Date) *Dataset {
	return s.days.Get(d, s.gen.Generate)
}

// Generate implements source.Source.
func (s *Source) Generate(d dates.Date) *source.Frame {
	return s.Dataset(d).Frame()
}

// CacheStats reports the native survey cache's activity.
func (s *Source) CacheStats() source.CacheStats { return s.days.Stats() }
