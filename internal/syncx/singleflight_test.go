package syncx

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheSingleflight hammers one key from many goroutines and checks
// the fill ran exactly once and everyone saw its value.
func TestCacheSingleflight(t *testing.T) {
	var c Cache[string, int]
	var fills atomic.Int64
	var wg sync.WaitGroup
	const goroutines = 64
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g] = c.Get("k", func() int {
				fills.Add(1)
				time.Sleep(2 * time.Millisecond) // widen the race window
				return 7
			})
		}()
	}
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Fatalf("fill ran %d times; singleflight demands exactly 1", n)
	}
	for g, v := range results {
		if v != 7 {
			t.Fatalf("goroutine %d saw %d, want 7", g, v)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// TestCacheDistinctKeysParallel proves fills for distinct keys overlap:
// two fills that each block until the other has started can only finish
// if they run concurrently.
func TestCacheDistinctKeysParallel(t *testing.T) {
	var c Cache[int, int]
	started := make(chan int, 2)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Get(k, func() int {
				started <- k
				<-release // both fills must be in flight before either returns
				return k
			})
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("distinct-key fills serialized: second fill never started")
		}
	}
	close(release)
	wg.Wait()
}

// TestCacheManyKeysExactlyOnce mixes overlapping keys across goroutines
// and checks per-key fill counts.
func TestCacheManyKeysExactlyOnce(t *testing.T) {
	var c Cache[int, int]
	const keys = 10
	fills := make([]atomic.Int64, keys)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := (g + i) % keys
				if got := c.Get(k, func() int { fills[k].Add(1); return k * k }); got != k*k {
					t.Errorf("Get(%d) = %d, want %d", k, got, k*k)
					return
				}
			}
		}()
	}
	wg.Wait()
	for k := range fills {
		if n := fills[k].Load(); n != 1 {
			t.Errorf("key %d filled %d times, want 1", k, n)
		}
	}
	if c.Len() != keys {
		t.Errorf("Len = %d, want %d", c.Len(), keys)
	}
}

func TestParallelEach(t *testing.T) {
	for _, par := range []int{-1, 0, 1, 3, 64} {
		out := make([]int, 100)
		ParallelEach(len(out), par, func(i int) { out[i] = i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("par %d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
	ParallelEach(0, 4, func(int) { t.Fatal("fn called for n = 0") })
}
