// Package syncx provides the small concurrency primitives shared by the
// day-artifact caches: a generic per-key singleflight memo and a bounded
// deterministic parallel-for. Both exist so that the experiment pipeline
// can use every core without giving up byte-identical results — callers
// only ever observe values that are pure functions of their inputs, never
// of scheduling order.
package syncx

import (
	"runtime"
	"sync"
)

// Cache memoizes one value per key with singleflight fills: concurrent
// Get calls for the same key block until the single in-flight fill
// completes and then share its result, while fills for distinct keys
// proceed in parallel. A fill function runs at most once per key over the
// cache's lifetime; the value is retained forever. The zero value is
// ready to use.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
}

// Get returns the cached value for key, running fill to produce it unless
// a fill for key already completed or is in flight. The map lock is held
// only while locating the entry, never across fill, so misses on distinct
// keys do not serialize.
func (c *Cache[K, V]) Get(key K, fill func() V) V {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[K]*cacheEntry[V])
	}
	e, ok := c.entries[key]
	if !ok {
		e = new(cacheEntry[V])
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val = fill() })
	return e.val
}

// Len reports how many keys have an entry (filled or in flight).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// ParallelEach invokes fn(i) for every i in [0, n), running at most
// parallelism calls concurrently (GOMAXPROCS when parallelism <= 0). It
// returns after all calls complete. Determinism contract: each fn(i) must
// depend only on i and write only to its own slot of any shared output,
// so the aggregate result is independent of interleaving.
func ParallelEach(n, parallelism int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
