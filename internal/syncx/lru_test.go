package syncx

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLRUSingleflight hammers one resident key and checks exactly one
// fill ran and every caller saw its value.
func TestLRUSingleflight(t *testing.T) {
	c := NewLRU[string, int](4)
	var fills atomic.Int64
	var wg sync.WaitGroup
	const goroutines = 48
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g] = c.Get("k", func() int {
				fills.Add(1)
				time.Sleep(2 * time.Millisecond) // widen the race window
				return 9
			})
		}()
	}
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Fatalf("fill ran %d times, want 1", n)
	}
	for g, v := range results {
		if v != 9 {
			t.Fatalf("goroutine %d saw %d, want 9", g, v)
		}
	}
	hits, misses, evictions := c.Stats()
	if misses != 1 || evictions != 0 {
		t.Fatalf("stats = (%d hits, %d misses, %d evictions); want 1 miss, 0 evictions", hits, misses, evictions)
	}
	if hits != goroutines-1 {
		t.Fatalf("hits = %d, want %d", hits, goroutines-1)
	}
}

// TestLRUEviction walks more keys than the capacity and checks the
// recency order of evictions: the least recently *used* key goes, not
// the least recently inserted.
func TestLRUEviction(t *testing.T) {
	c := NewLRU[int, int](2)
	fills := map[int]int{}
	get := func(k int) int {
		return c.Get(k, func() int { fills[k]++; return k * 10 })
	}
	get(1) // resident: [1]
	get(2) // resident: [2 1]
	get(1) // touch 1 → resident: [1 2]
	get(3) // evicts 2 → resident: [3 1]
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if got := get(2); got != 20 { // refill after eviction
		t.Fatalf("Get(2) = %d, want 20", got)
	}
	if fills[2] != 2 {
		t.Fatalf("key 2 filled %d times; want 2 (evicted then refilled)", fills[2])
	}
	if fills[1] != 1 {
		t.Fatalf("key 1 filled %d times; want 1 (kept resident by the touch)", fills[1])
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want capacity 2", c.Len())
	}
}

// TestLRUDeterministicRefill checks the contract the day caches rely on:
// values are pure functions of the key, so an evicted-and-refilled key
// yields an equal value.
func TestLRUDeterministicRefill(t *testing.T) {
	c := NewLRU[int, int](1)
	pure := func(k int) func() int { return func() int { return k*k + 7 } }
	first := c.Get(5, pure(5))
	c.Get(6, pure(6)) // evicts 5
	again := c.Get(5, pure(5))
	if first != again {
		t.Fatalf("refill changed value: %d then %d", first, again)
	}
}

// TestLRUHammerUnderPressure pounds a key space larger than the capacity
// from many goroutines — the -race workout for concurrent Get, eviction,
// and in-flight eviction. Values must always match the key's pure fill.
func TestLRUHammerUnderPressure(t *testing.T) {
	const capacity, keys = 8, 64
	c := NewLRU[int, int](capacity)
	var wg sync.WaitGroup
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*13 + i) % keys
				if got := c.Get(k, func() int { return k * 101 }); got != k*101 {
					t.Errorf("Get(%d) = %d, want %d", k, got, k*101)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := c.Len(); n > capacity {
		t.Fatalf("Len = %d exceeds capacity %d", n, capacity)
	}
	hits, misses, evictions := c.Stats()
	if evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	if hits+misses != 24*500 {
		t.Fatalf("hits (%d) + misses (%d) != requests (%d)", hits, misses, 24*500)
	}
	if misses < keys { // every key must have missed at least once
		t.Fatalf("misses = %d, want >= %d", misses, keys)
	}
}

// TestLRUCapacityNormalization checks degenerate capacities.
func TestLRUCapacityNormalization(t *testing.T) {
	c := NewLRU[int, int](0)
	if c.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", c.Cap())
	}
	c.Get(1, func() int { return 1 })
	c.Get(2, func() int { return 2 })
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}
