package syncx

import (
	"sync"
	"sync/atomic"
)

// LRU is a bounded variant of Cache: per-key singleflight fills with
// least-recently-used eviction once the number of resident keys exceeds
// the capacity. It exists for long-running servers where the key space
// (e.g. every day of a decade-long date range) is too large to retain
// forever but hot keys must still be generated at most once while they
// stay resident.
//
// The singleflight guarantee is scoped to residency: while a key is in
// the cache, concurrent Gets share one fill; after the key is evicted, a
// later Get fills again. Callers therefore need fills that are pure
// functions of the key (true of every day artifact in this repository),
// so an eviction can never change observable values, only cost.
//
// Hit, miss, and eviction counts are kept as atomics so an observability
// layer can surface them as gauges without taking the cache lock.
type LRU[K comparable, V any] struct {
	mu      sync.Mutex
	cap     int
	entries map[K]*lruEntry[K, V]
	// head is the most recently used entry, tail the eviction candidate.
	head, tail *lruEntry[K, V]

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type lruEntry[K comparable, V any] struct {
	key        K
	once       sync.Once
	val        V
	prev, next *lruEntry[K, V]
}

// NewLRU returns a bounded cache retaining at most capacity keys
// (capacity < 1 means 1).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{cap: capacity, entries: make(map[K]*lruEntry[K, V], capacity+1)}
}

// Get returns the value for key, running fill unless a fill for key is
// resident (completed or in flight). The lock is held only to locate the
// entry and maintain recency order, never across fill, so misses on
// distinct keys do not serialize. An entry evicted while its fill is in
// flight still completes for its waiters; it is simply no longer shared
// with later callers.
func (c *LRU[K, V]) Get(key K, fill func() V) V {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits.Add(1)
		c.moveToFront(e)
	} else {
		c.misses.Add(1)
		e = &lruEntry[K, V]{key: key}
		c.entries[key] = e
		c.pushFront(e)
		if len(c.entries) > c.cap {
			c.evict()
		}
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val = fill() })
	return e.val
}

// evict removes the least recently used entry. Caller holds c.mu.
func (c *LRU[K, V]) evict() {
	victim := c.tail
	if victim == nil {
		return
	}
	c.unlink(victim)
	delete(c.entries, victim.key)
	c.evictions.Add(1)
}

func (c *LRU[K, V]) pushFront(e *lruEntry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *LRU[K, V]) unlink(e *lruEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *LRU[K, V]) moveToFront(e *lruEntry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// Len reports how many keys are resident (filled or in flight).
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Cap returns the configured capacity.
func (c *LRU[K, V]) Cap() int { return c.cap }

// Stats returns cumulative hit, miss, and eviction counts. Safe to call
// concurrently with Get; intended for metrics gauges.
func (c *LRU[K, V]) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
