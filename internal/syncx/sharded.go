package syncx

// Sharded is a singleflight Cache partitioned across independent shards
// so that high-frequency memoization (per-(country, day) scans hit from
// every experiment runner at once) does not serialize on one map mutex.
// Each shard is a Cache, so the per-key guarantees are unchanged: a fill
// runs at most once per key, concurrent callers for the same key share
// the single in-flight fill, and fills for distinct keys proceed in
// parallel. The caller supplies the key hash; only shard selection uses
// it, so a weak hash costs contention, never correctness.
type Sharded[K comparable, V any] struct {
	shards []Cache[K, V]
	hash   func(K) uint64
	mask   uint64
}

// NewSharded returns a sharded singleflight cache with at least nShards
// shards (rounded up to a power of two; values < 2 mean a sensible
// default of 16). hash maps a key to its shard and must be deterministic.
func NewSharded[K comparable, V any](nShards int, hash func(K) uint64) *Sharded[K, V] {
	if nShards < 2 {
		nShards = 16
	}
	n := 1
	for n < nShards {
		n <<= 1
	}
	return &Sharded[K, V]{
		shards: make([]Cache[K, V], n),
		hash:   hash,
		mask:   uint64(n - 1),
	}
}

// Get returns the cached value for key, running fill at most once per key
// over the cache's lifetime (singleflight within the key's shard).
func (s *Sharded[K, V]) Get(key K, fill func() V) V {
	return s.shards[s.hash(key)&s.mask].Get(key, fill)
}

// Len reports how many keys have an entry across all shards (filled or
// in flight).
func (s *Sharded[K, V]) Len() int {
	total := 0
	for i := range s.shards {
		total += s.shards[i].Len()
	}
	return total
}
