package syncx

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func identHash(k int) uint64 { return uint64(k) }

// TestShardedSingleflight hammers a key set spread across shards from
// many goroutines and checks every key filled exactly once and every
// caller saw the fill's value.
func TestShardedSingleflight(t *testing.T) {
	c := NewSharded[int, int](8, identHash)
	const keys = 64
	fills := make([]atomic.Int64, keys)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g*7 + i) % keys
				if got := c.Get(k, func() int { fills[k].Add(1); return k * 3 }); got != k*3 {
					t.Errorf("Get(%d) = %d, want %d", k, got, k*3)
					return
				}
			}
		}()
	}
	wg.Wait()
	for k := range fills {
		if n := fills[k].Load(); n != 1 {
			t.Errorf("key %d filled %d times, want 1", k, n)
		}
	}
	if c.Len() != keys {
		t.Errorf("Len = %d, want %d", c.Len(), keys)
	}
}

// TestShardedOneKeyManyWaiters checks the per-key singleflight contract
// survives a deliberately widened race window.
func TestShardedOneKeyManyWaiters(t *testing.T) {
	c := NewSharded[string, int](4, func(s string) uint64 { return uint64(len(s)) })
	var fills atomic.Int64
	var wg sync.WaitGroup
	const goroutines = 48
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g] = c.Get("key", func() int {
				fills.Add(1)
				time.Sleep(2 * time.Millisecond)
				return 11
			})
		}()
	}
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Fatalf("fill ran %d times, want 1", n)
	}
	for g, v := range results {
		if v != 11 {
			t.Fatalf("goroutine %d saw %d, want 11", g, v)
		}
	}
}

// TestShardedDistinctShardsParallel proves fills landing on different
// shards overlap: each fill blocks until the other has started.
func TestShardedDistinctShardsParallel(t *testing.T) {
	c := NewSharded[int, int](2, identHash)
	started := make(chan int, 2)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ { // keys 0 and 1 hash to different shards
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Get(k, func() int {
				started <- k
				<-release
				return k
			})
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("cross-shard fills serialized: second fill never started")
		}
	}
	close(release)
	wg.Wait()
}

// TestShardedShardCountRounding checks constructor normalization.
func TestShardedShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-1, 16}, {0, 16}, {1, 16}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		c := NewSharded[int, int](tc.in, identHash)
		if len(c.shards) != tc.want {
			t.Errorf("NewSharded(%d): %d shards, want %d", tc.in, len(c.shards), tc.want)
		}
	}
}
