package stream

import (
	"bufio"
	"io"
	"strconv"
)

// Publisher consumes the pipeline's output. Publish is called from one
// goroutine, once per batch, in sequence order; Close runs after the
// last batch, even on cancelled runs.
type Publisher interface {
	Publish(Batch) error
	Close() error
}

// EstimatorSink publishes batches into a rolling estimator: the
// in-memory estimate sink behind the /v1/live/ endpoint.
type EstimatorSink struct {
	Est *RollingEstimator
}

// Publish feeds every impression to the estimator.
func (s *EstimatorSink) Publish(b Batch) error {
	s.Est.ObserveBatch(b)
	return nil
}

// Close is a no-op; the estimator keeps serving after the stream ends.
func (s *EstimatorSink) Close() error { return nil }

// WriterSink streams published impressions as CSV lines
// (date,cc,asn,weight,bytes) to an io.Writer — the durable-log shape of
// a publisher, for piping a live stream back into batch tooling.
type WriterSink struct {
	W io.Writer

	bw  *bufio.Writer
	buf []byte
	err error
}

// Publish appends one line per impression. After a write error every
// later Publish returns the same error without writing (the pipeline
// counts the batches as failed).
func (s *WriterSink) Publish(b Batch) error {
	if s.err != nil {
		return s.err
	}
	if s.bw == nil {
		s.bw = bufio.NewWriter(s.W)
	}
	for _, imp := range b.Imps {
		s.buf = s.buf[:0]
		s.buf = append(s.buf, imp.Day.String()...)
		s.buf = append(s.buf, ',')
		s.buf = append(s.buf, imp.CC...)
		s.buf = append(s.buf, ',')
		s.buf = strconv.AppendUint(s.buf, uint64(imp.ASN), 10)
		s.buf = append(s.buf, ',')
		s.buf = strconv.AppendInt(s.buf, imp.Weight, 10)
		s.buf = append(s.buf, ',')
		s.buf = strconv.AppendInt(s.buf, imp.Bytes, 10)
		s.buf = append(s.buf, '\n')
		if _, err := s.bw.Write(s.buf); err != nil {
			s.err = err
			return err
		}
	}
	return nil
}

// Close flushes the buffered tail.
func (s *WriterSink) Close() error {
	if s.bw == nil {
		return s.err
	}
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Tee fans one batch stream out to several publishers: every publisher
// sees every batch. Publish returns the first error but still delivers
// to the rest (their ledgers stay consistent).
type Tee []Publisher

// Publish delivers the batch to every publisher.
func (t Tee) Publish(b Batch) error {
	var first error
	for _, p := range t {
		if err := p.Publish(b); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close closes every publisher, returning the first error.
func (t Tee) Close() error {
	var first error
	for _, p := range t {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
