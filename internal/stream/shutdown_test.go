package stream

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/dates"
)

// notifySink hands every published batch to the test over a channel (so
// the test can throttle the pipeline and pick the cancellation point)
// and records Close ordering.
type notifySink struct {
	out        chan Batch
	closes     atomic.Int64
	closedLast atomic.Bool // set by Close, cleared by any Publish after it
}

func (s *notifySink) Publish(b Batch) error {
	if s.closes.Load() != 0 {
		s.closedLast.Store(false)
	}
	s.out <- Batch{Seq: b.Seq, Imps: append([]Impression(nil), b.Imps...)}
	return nil
}

func (s *notifySink) Close() error {
	s.closes.Add(1)
	s.closedLast.Store(true)
	return nil
}

// TestShutdownDrainHammer cancels a running pipeline at many different
// points and, every time, demands the exactly-once drain contract:
//
//   - the publisher sees contiguous batch sequence numbers 1..N, each
//     exactly once, in order;
//   - every accepted event is accounted for: accepted == filtered +
//     published (no publish failures here), with no impression lost or
//     duplicated between admission and the publisher;
//   - Close runs exactly once, after the last batch.
//
// The source is unbounded, so the pipeline can only stop via the
// cancel; staggering when the cancel lands (by consuming a varying
// number of batches first) moves the shutdown point across all four
// stages. Run under -race this doubles as the concurrency proof.
func TestShutdownDrainHammer(t *testing.T) {
	d := dates.MustParse("2024-04-21")
	for iter := 0; iter < 20; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("iter%02d", iter), func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			// Unbounded source: pre-resolved events forever, until the
			// admission edge reports shutdown.
			src := sourceFunc(func(ctx context.Context, emit func(Event) bool) error {
				for i := 0; ; i++ {
					ev := preEvent(d, uint32(i%13+1), 1)
					if i%11 == 0 {
						ev = Event{Day: d} // raw record → filtered (no enricher)
					}
					if !emit(ev) {
						return nil
					}
				}
			})

			published := make(chan Batch, 4)
			sink := &notifySink{out: published}
			p, err := New(Config{
				Source:        src,
				Publisher:     sink,
				QueueLen:      4,
				BatchQueueLen: 2,
				MaxBatch:      8,
			})
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() { done <- p.Run(ctx) }()

			// Let `iter` batches through, then cancel mid-flight — each
			// iteration lands the cancel at a different pipeline state.
			var seen []Batch
			for len(seen) < iter {
				seen = append(seen, <-published)
			}
			cancel()
			// Keep draining while Run finishes, then collect the tail.
			for {
				select {
				case b := <-published:
					seen = append(seen, b)
					continue
				case err := <-done:
					if err != nil {
						t.Fatal(err)
					}
				}
				break
			}
			for {
				select {
				case b := <-published:
					seen = append(seen, b)
					continue
				default:
				}
				break
			}

			var imps int64
			for i, b := range seen {
				if b.Seq != int64(i+1) {
					t.Fatalf("batch %d has seq %d: sequence not contiguous/unique", i, b.Seq)
				}
				imps += int64(len(b.Imps))
			}
			st := p.Stats()
			if st.Accepted != st.Filtered+st.Published {
				t.Fatalf("drain ledger broken: accepted %d != filtered %d + published %d",
					st.Accepted, st.Filtered, st.Published)
			}
			if st.PublishFailed != 0 {
				t.Fatalf("unexpected publish failures: %+v", st)
			}
			if imps != st.Published {
				t.Fatalf("publisher saw %d impressions, counters say %d", imps, st.Published)
			}
			if int64(len(seen)) != st.Batches {
				t.Fatalf("publisher saw %d batches, counters say %d", len(seen), st.Batches)
			}
			if got := sink.closes.Load(); got != 1 {
				t.Fatalf("Close called %d times, want 1", got)
			}
			if !sink.closedLast.Load() {
				t.Fatal("Close ran before the last Publish")
			}
		})
	}
}

// TestCancelBeforeStart drains cleanly even when the context is already
// cancelled: nothing admitted, Close still runs.
func TestCancelBeforeStart(t *testing.T) {
	d := dates.MustParse("2024-04-21")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sink := &recordingSink{}
	src := sourceFunc(func(ctx context.Context, emit func(Event) bool) error {
		for i := 0; ; i++ {
			if !emit(preEvent(d, 1, 1)) {
				return nil
			}
		}
	})
	p, err := New(Config{Source: src, Publisher: sink})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Accepted != 0 || st.Published != 0 {
		t.Fatalf("pre-cancelled run admitted work: %+v", st)
	}
	if sink.closed != 1 {
		t.Fatalf("Close called %d times, want 1", sink.closed)
	}
}
