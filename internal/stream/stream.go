// Package stream turns the batch cdnlog layer into a continuous
// ingestion pipeline, in the beats mold: a replayable source emits raw
// log events, a filter/enrich stage resolves them against the compiled
// routing database and drops bots, a size- and age-bounded batcher
// groups the survivors, and pluggable publishers consume the batches —
// all connected by bounded channels with explicit backpressure.
//
// Stage graph:
//
//	Source ──emit──▶ [events] ──▶ Enrich ──▶ [imps] ──▶ Batch ──▶ [batches] ──▶ Publish
//	                 bounded        drops      bounded    flush on    bounded       sink
//	                 block/shed     counted               size/age
//
// Backpressure is explicit at the admission edge: with Policy Block the
// source's emit blocks until the events queue has space (lossless, the
// source slows to the pipeline's pace); with Shed a full queue drops the
// event and counts it, keeping the source's schedule intact (the
// open-loop discipline). Every later edge blocks: once an event is
// accepted it is never dropped, so after a graceful drain
//
//	accepted == filtered + published + publish_failed
//
// holds exactly (the reconciliation tests pin it).
//
// Shutdown is a drain, not an abort: cancelling the Run context stops
// the source, then each stage closes its output after exhausting its
// input, so every accepted event reaches the publisher exactly once
// before Run returns.
//
// On top of the pipeline, RollingEstimator (estimator.go) maintains
// APNIC-style per-(country, AS) user estimates over a sliding window and
// converges exactly to the batch apnic.Generator once a day's stream is
// drained, because both assemble reports through the same
// apnic.AssembleReport code path.
package stream

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obsv"
)

// Policy selects what the admission edge does when the events queue is
// full.
type Policy int

const (
	// Block makes emit wait for queue space: lossless, the source runs
	// at the pipeline's pace (closed-loop backpressure).
	Block Policy = iota
	// Shed makes emit drop the event when the queue is full, counting
	// it, so the source's own schedule is never delayed (open-loop
	// backpressure; the loadgen discipline applied to ingestion).
	Shed
)

// Config parameterizes one pipeline.
type Config struct {
	Source    Source
	Enrich    Enricher  // nil: only pre-resolved events pass; raw records drop as "unresolvable"
	Publisher Publisher // required

	// QueueLen bounds the events and impressions channels (default 256).
	QueueLen int
	// BatchQueueLen bounds the batches channel (default 8).
	BatchQueueLen int
	// OnFull is the admission policy at the source edge.
	OnFull Policy

	// MaxBatch flushes a batch when it reaches this many impressions
	// (default 512). MaxAge, when > 0, also flushes a non-empty batch
	// this long after its first impression, so a quiet stream still
	// publishes promptly.
	MaxBatch int
	MaxAge   time.Duration

	// Clock paces the source and drives age-based flushes; nil means the
	// real clock. Tests inject manual clocks.
	Clock Clock

	// Metrics, when non-nil, receives the per-stage counters and queue
	// depth gauges (stream_* series). A nil registry records to a
	// private one; Stats works either way.
	Metrics *obsv.Registry
}

// Stats is a point-in-time snapshot of the pipeline ledger.
type Stats struct {
	Emitted       int64 // events the source offered to the admission edge
	Accepted      int64 // events admitted into the pipeline
	SourceShed    int64 // events dropped at the full events queue (Shed policy)
	Filtered      int64 // accepted events dropped by the enrich stage (all reasons)
	Batches       int64 // batches handed to the publisher
	Published     int64 // impressions inside successfully published batches
	PublishFailed int64 // impressions inside batches whose Publish errored
}

// FilterReasons is the bounded label set of the enrich stage's drops.
var FilterReasons = []string{ReasonBot, ReasonUnrouted, ReasonUnassigned, ReasonUnresolvable}

const (
	ReasonBot          = "bot"          // bot score below the threshold
	ReasonUnrouted     = "unrouted"     // client address matched no route
	ReasonUnassigned   = "unassigned"   // routed, but the AS is not in the org registry
	ReasonUnresolvable = "unresolvable" // raw record with no enricher configured
)

// Pipeline is one configured source→publisher chain. Build with New, run
// with Run; a pipeline is single-use.
type Pipeline struct {
	cfg Config

	emitted       atomic.Int64
	accepted      *obsv.Counter
	shed          *obsv.Counter
	filtered      map[string]*obsv.Counter
	filteredTotal atomic.Int64
	batches       *obsv.Counter
	published     *obsv.Counter
	publishFailed *obsv.Counter
}

// New validates the config and registers the pipeline's metric series.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("stream: config needs a Source")
	}
	if cfg.Publisher == nil {
		return nil, fmt.Errorf("stream: config needs a Publisher")
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 256
	}
	if cfg.BatchQueueLen <= 0 {
		cfg.BatchQueueLen = 8
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 512
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	p := &Pipeline{
		cfg:           cfg,
		accepted:      reg.Counter("stream_accepted_total"),
		shed:          reg.Counter("stream_shed_total"),
		filtered:      map[string]*obsv.Counter{},
		batches:       reg.Counter("stream_batches_total"),
		published:     reg.Counter("stream_published_records_total"),
		publishFailed: reg.Counter("stream_publish_failed_records_total"),
	}
	for _, reason := range FilterReasons {
		p.filtered[reason] = reg.Counter(obsv.Label("stream_filtered_total", "reason", reason))
	}
	return p, nil
}

// Stats snapshots the ledger. Totals are exact once Run has returned;
// mid-run they are a consistent-enough monitoring view (each counter is
// atomic, the set is not).
func (p *Pipeline) Stats() Stats {
	return Stats{
		Emitted:       p.emitted.Load(),
		Accepted:      p.accepted.Value(),
		SourceShed:    p.shed.Value(),
		Filtered:      p.filteredTotal.Load(),
		Batches:       p.batches.Value(),
		Published:     p.published.Value(),
		PublishFailed: p.publishFailed.Value(),
	}
}

// Run drives the pipeline until the source finishes or ctx is cancelled,
// then drains: every accepted event flows through enrich, batching and
// the publisher before Run returns. The publisher's Close always runs.
// The returned error is the source's, if any (publisher errors are
// counted per batch, not fatal — a log pipeline must outlive its sink's
// bad moments).
func (p *Pipeline) Run(ctx context.Context) error {
	events := make(chan Event, p.cfg.QueueLen)
	imps := make(chan Impression, p.cfg.QueueLen)
	batches := make(chan Batch, p.cfg.BatchQueueLen)

	if p.cfg.Metrics != nil {
		p.cfg.Metrics.GaugeFunc(`stream_queue_depth{stage="events"}`, func() float64 { return float64(len(events)) })
		p.cfg.Metrics.GaugeFunc(`stream_queue_depth{stage="impressions"}`, func() float64 { return float64(len(imps)) })
		p.cfg.Metrics.GaugeFunc(`stream_queue_depth{stage="batches"}`, func() float64 { return float64(len(batches)) })
	}

	// Source. The emit closure is the admission edge: it owns the
	// block-vs-shed decision and the accepted/shed ledger, and reports
	// shutdown to the source by returning false.
	srcErr := make(chan error, 1)
	go func() {
		defer close(events)
		srcErr <- p.cfg.Source.Run(ctx, func(ev Event) bool {
			p.emitted.Add(1)
			select {
			case <-ctx.Done():
				return false
			default:
			}
			switch p.cfg.OnFull {
			case Shed:
				select {
				case events <- ev:
					p.accepted.Inc()
				default:
					p.shed.Inc()
				}
				return true
			default: // Block
				select {
				case events <- ev:
					p.accepted.Inc()
					return true
				case <-ctx.Done():
					return false
				}
			}
		})
	}()

	// Enrich. Downstream edges deliberately ignore ctx: once an event is
	// accepted it must reach the publisher (the drain guarantee), and
	// every consumer runs until its input closes, so blocking sends
	// cannot deadlock.
	go func() {
		defer close(imps)
		for ev := range events {
			imp, reason := p.enrich(ev)
			if reason != "" {
				p.filteredTotal.Add(1)
				p.filtered[reason].Inc()
				continue
			}
			imps <- imp
		}
	}()

	// Batch.
	go func() {
		defer close(batches)
		p.batch(imps, batches)
	}()

	// Publish, on the Run goroutine: when the batches channel closes the
	// drain is complete.
	for b := range batches {
		p.batches.Inc()
		if err := p.cfg.Publisher.Publish(b); err != nil {
			p.publishFailed.Add(int64(len(b.Imps)))
		} else {
			p.published.Add(int64(len(b.Imps)))
		}
	}
	err := <-srcErr
	if cerr := p.cfg.Publisher.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// enrich resolves one event, passing pre-resolved impressions straight
// through. An empty reason means accepted.
func (p *Pipeline) enrich(ev Event) (Impression, string) {
	if ev.Pre != nil {
		return *ev.Pre, ""
	}
	if p.cfg.Enrich == nil {
		return Impression{}, ReasonUnresolvable
	}
	return p.cfg.Enrich.Enrich(ev)
}

// batch groups impressions into size- and age-bounded batches. The age
// timer arms when a batch gets its first impression and is read through
// the injected clock, so tests drive flushes deterministically.
func (p *Pipeline) batch(in <-chan Impression, out chan<- Batch) {
	var (
		seq     int64
		pending []Impression
		ageUp   <-chan time.Time
	)
	flush := func() {
		if len(pending) == 0 {
			return
		}
		seq++
		out <- Batch{Seq: seq, Imps: pending}
		pending = nil
		ageUp = nil
	}
	for {
		select {
		case imp, ok := <-in:
			if !ok {
				flush()
				return
			}
			if len(pending) == 0 && p.cfg.MaxAge > 0 {
				ageUp = p.cfg.Clock.After(p.cfg.MaxAge)
			}
			pending = append(pending, imp)
			if len(pending) >= p.cfg.MaxBatch {
				flush()
			}
		case <-ageUp:
			flush()
		}
	}
}
