package stream

import (
	"repro/internal/netdb"
	"repro/internal/orgs"
)

// Enricher resolves one raw event into an attributed impression. An
// empty reason accepts the impression; a non-empty reason (one of
// FilterReasons) drops the event and counts it.
type Enricher interface {
	Enrich(Event) (Impression, string)
}

// CDNEnricher replays the paper's §3.4 attribution on a live stream,
// with the same semantics and ordering as cdnlog.Aggregator.Add: resolve
// the client ASN by longest-prefix match (unrouted drops), map it to an
// organization (unassigned drops), geolocate with the CDN's internal
// true-country view, then apply the bot-score filter. The resolver is
// the netdb read interface, so the compiled artifact (World.RoutingDB)
// serves lookups allocation-free on this hot path.
type CDNEnricher struct {
	DB           netdb.Database
	Registry     *orgs.Registry
	BotThreshold int // drop records scoring below this (the paper keeps >= 50)
}

// Enrich resolves one record-level event.
func (e *CDNEnricher) Enrich(ev Event) (Impression, string) {
	asn := e.DB.ASN(ev.Rec.Client)
	if asn == 0 {
		return Impression{}, ReasonUnrouted
	}
	if _, ok := e.Registry.ByASN(asn); !ok {
		return Impression{}, ReasonUnassigned
	}
	if ev.Rec.BotScore < e.BotThreshold {
		return Impression{}, ReasonBot
	}
	return Impression{
		Day:    ev.Day,
		CC:     e.DB.TrueCountry(ev.Rec.Client),
		ASN:    asn,
		Weight: 1,
		Bytes:  ev.Rec.Bytes,
	}, ""
}
