package stream

import (
	"sort"
	"sync"

	"repro/internal/apnic"
	"repro/internal/dates"
)

// RollingEstimator maintains APNIC-style user estimates over a live
// impression stream. APNIC republishes daily, each report covering a
// 60-day moving window; the simulators model that by attributing every
// impression to its report day. The estimator therefore keeps one raw
// per-(CC, AS) count accumulator per day, retains a sliding window of
// the most recent Window days (older days evict as the stream
// advances), and assembles any retained day's report on demand through
// apnic.AssembleReport — the same code path the batch generator uses.
//
// That shared assembly is the convergence guarantee: once a day's
// events have fully drained into the estimator, Report(day) equals
// apnic.Generator.Generate(day) exactly — same floats, same ranks, same
// row order — pinned by the equality tests.
//
// All methods are safe for concurrent use; the pipeline publishes while
// the live HTTP endpoint snapshots.
type RollingEstimator struct {
	gen    *apnic.Generator
	window int

	mu      sync.RWMutex
	days    map[int]map[ccASN]int64 // day number → raw per-(cc, asn) counts
	latest  int                     // newest day number observed (valid when haveAny)
	haveAny bool
	rev     uint64 // bumped on every accepted mutation; the live ETag seam
	late    int64  // impressions for days already evicted from the window
	evicted int64  // days dropped off the back of the window

	// One-entry report cache: the live endpoint assembles the same
	// (day, rev) snapshot once, not per request.
	cachedDay int
	cachedRev uint64
	cached    *apnic.Report
}

type ccASN struct {
	cc  string
	asn uint32
}

// NewRollingEstimator returns an estimator whose retention window and
// report assembly come from the generator's configuration (Window,
// MinSamples, ITU scaling). Configure the generator before first use.
func NewRollingEstimator(gen *apnic.Generator) *RollingEstimator {
	w := gen.Window
	if w < 1 {
		w = 1
	}
	return &RollingEstimator{gen: gen, window: w, days: map[int]map[ccASN]int64{}}
}

// Observe credits one impression to its day's accumulator. Impressions
// for days that have already slid out of the window are counted as late
// and dropped — the published dataset never rewrites history either.
func (e *RollingEstimator) Observe(imp Impression) {
	e.mu.Lock()
	e.observeLocked(imp)
	e.mu.Unlock()
}

// ObserveBatch credits a whole batch under one lock acquisition.
func (e *RollingEstimator) ObserveBatch(b Batch) {
	e.mu.Lock()
	for _, imp := range b.Imps {
		e.observeLocked(imp)
	}
	e.mu.Unlock()
}

func (e *RollingEstimator) observeLocked(imp Impression) {
	dn := imp.Day.DayNumber()
	if e.haveAny && dn <= e.latest-e.window {
		e.late++
		return
	}
	if !e.haveAny || dn > e.latest {
		e.latest = dn
		e.haveAny = true
		// Slide the window: drop days that fell off the back.
		for day := range e.days {
			if day <= e.latest-e.window {
				delete(e.days, day)
				e.evicted++
			}
		}
	}
	m := e.days[dn]
	if m == nil {
		m = map[ccASN]int64{}
		e.days[dn] = m
	}
	m[ccASN{imp.CC, imp.ASN}] += imp.Weight
	e.rev++
}

// Counts returns one retained day's raw per-AS counts in (CC, ASN)
// order, or nil for a day outside the window.
func (e *RollingEstimator) Counts(d dates.Date) []apnic.ASCount {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.countsLocked(d.DayNumber())
}

func (e *RollingEstimator) countsLocked(dn int) []apnic.ASCount {
	m := e.days[dn]
	if m == nil {
		return nil
	}
	counts := make([]apnic.ASCount, 0, len(m))
	for k, n := range m {
		counts = append(counts, apnic.ASCount{CC: k.cc, ASN: k.asn, Samples: n})
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].CC != counts[j].CC {
			return counts[i].CC < counts[j].CC
		}
		return counts[i].ASN < counts[j].ASN
	})
	return counts
}

// Report assembles one retained day's rolling report. For a day with no
// retained counts (outside the window, or never streamed) the report is
// empty, not nil.
func (e *RollingEstimator) Report(d dates.Date) *apnic.Report {
	dn := d.DayNumber()
	e.mu.RLock()
	rep, counts, rev, hit := e.reportStateLocked(dn)
	e.mu.RUnlock()
	if hit {
		return rep
	}
	return e.assemble(d, dn, counts, rev)
}

// reportStateLocked returns the cached report for day dn, or the counts
// snapshot (taken atomically with rev) an assembly needs.
func (e *RollingEstimator) reportStateLocked(dn int) (rep *apnic.Report, counts []apnic.ASCount, rev uint64, hit bool) {
	rev = e.rev
	if e.cached != nil && e.cachedDay == dn && e.cachedRev == rev {
		return e.cached, nil, rev, true
	}
	return nil, e.countsLocked(dn), rev, false
}

// assemble renders a report outside the estimator lock — the
// generator's memo caches are concurrency-safe, and publishers keep
// observing while a slow snapshot renders — then caches it if nothing
// changed meanwhile.
func (e *RollingEstimator) assemble(d dates.Date, dn int, counts []apnic.ASCount, rev uint64) *apnic.Report {
	rep := e.gen.AssembleReport(d, counts)
	e.mu.Lock()
	if e.rev == rev {
		e.cachedDay, e.cachedRev, e.cached = dn, rev, rep
	}
	e.mu.Unlock()
	return rep
}

// Snapshot returns the newest rolling day with its report and a
// revision that changes whenever the estimate changes — the seam the
// live HTTP endpoint serves (and validates conditional requests)
// through. The report is assembled from the same instant as rev, so an
// ETag minted from rev always names exactly these bytes. ok is false
// before any impression has arrived.
func (e *RollingEstimator) Snapshot() (d dates.Date, rev uint64, rep *apnic.Report, ok bool) {
	e.mu.RLock()
	if !e.haveAny {
		e.mu.RUnlock()
		return d, 0, nil, false
	}
	dn := e.latest
	rep, counts, rev, hit := e.reportStateLocked(dn)
	e.mu.RUnlock()
	d = dates.FromDayNumber(dn)
	if !hit {
		rep = e.assemble(d, dn, counts, rev)
	}
	return d, rev, rep, true
}

// Window returns the retention window in days.
func (e *RollingEstimator) Window() int { return e.window }

// DaysHeld returns how many day accumulators are currently retained.
func (e *RollingEstimator) DaysHeld() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.days)
}

// Late returns how many impressions arrived for already-evicted days.
func (e *RollingEstimator) Late() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.late
}

// Evicted returns how many day accumulators have slid out of the window.
func (e *RollingEstimator) Evicted() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.evicted
}
