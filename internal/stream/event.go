package stream

import (
	"time"

	"repro/internal/cdnlog"
	"repro/internal/dates"
)

// Event is one unit entering the pipeline: a raw log record tagged with
// the report day it belongs to, or (for replay sources that already know
// the attribution) a pre-resolved impression that bypasses the enrich
// stage.
type Event struct {
	Day dates.Date
	Rec cdnlog.Record

	// Pre, when non-nil, is a pre-resolved impression; the enrich stage
	// passes it through untouched. Replay sources use this to stream
	// already-attributed counts.
	Pre *Impression
}

// Impression is one enriched, attribution-resolved unit of ad sampling:
// Weight impressions credited to (CC, ASN) on Day. Record-level sources
// produce Weight 1; count-replay sources chunk larger weights.
type Impression struct {
	Day    dates.Date
	CC     string
	ASN    uint32
	Weight int64
	Bytes  int64
}

// Batch is one publisher delivery: a contiguous, in-order slice of
// accepted impressions with a 1-based sequence number. Publishers see
// every batch exactly once, in sequence order.
type Batch struct {
	Seq  int64
	Imps []Impression
}

// Records sums the batch's impression weights.
func (b Batch) Records() int64 {
	var n int64
	for _, imp := range b.Imps {
		n += imp.Weight
	}
	return n
}

// Clock is the injectable time seam: Now for pacing arithmetic, After
// for timers (source pacing, batch age flushes). The zero-dependency
// analogue of a beats pipeline's ticker plumbing; tests drive manual
// clocks for deterministic flushes.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
