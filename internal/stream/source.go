package stream

import (
	"context"
	"time"

	"repro/internal/apnic"
	"repro/internal/cdnlog"
	"repro/internal/dates"
)

// Source feeds events into the pipeline. Run emits until the source is
// exhausted or emit returns false (pipeline shutdown); emit's return
// value is the only shutdown signal a source must honor. Sources are
// replayable: the same configuration emits the same event sequence.
type Source interface {
	Run(ctx context.Context, emit func(Event) bool) error
}

// SamplerSource replays the cdnlog sampler's synthetic request records
// as a live stream: for each day in [From, From+Days), every country's
// records in the sampler's deterministic order, optionally paced to Rate
// events per second through the pipeline clock.
type SamplerSource struct {
	Sampler   *cdnlog.Sampler
	Countries []string
	From      dates.Date
	Days      int
	PerOrg    int // records per (country, org) pair per day

	// Rate paces emission in events/second; <= 0 replays as fast as the
	// pipeline accepts. Pacing waits on Clock, so tests with manual
	// clocks control the schedule.
	Rate  float64
	Clock Clock
}

// Run replays the configured window. It never returns a non-nil error:
// the sampler is infallible; the pipeline's admission edge handles loss.
func (s *SamplerSource) Run(ctx context.Context, emit func(Event) bool) error {
	clock := s.Clock
	if clock == nil {
		clock = realClock{}
	}
	pace := func() bool {
		if s.Rate <= 0 {
			return true
		}
		select {
		case <-clock.After(time.Duration(float64(time.Second) / s.Rate)):
			return true
		case <-ctx.Done():
			return false
		}
	}
	for i := 0; i < s.Days; i++ {
		d := s.From.AddDays(i)
		for _, cc := range s.Countries {
			stop := false
			s.Sampler.EachDayRecord(cc, d, s.PerOrg, func(rec cdnlog.Record) bool {
				if !pace() || !emit(Event{Day: d, Rec: rec}) {
					stop = true
					return false
				}
				return true
			})
			if stop {
				return nil
			}
		}
	}
	return nil
}

// CountSource replays the batch APNIC generator's raw per-AS window
// counts as pre-resolved impression events, chunked so one AS's count
// arrives as many events. Feeding these through the pipeline into a
// RollingEstimator must reproduce the batch report exactly — the
// convergence contract the equality tests pin.
type CountSource struct {
	Gen  *apnic.Generator
	From dates.Date
	Days int

	// Chunk caps one event's weight (default: the whole AS count in one
	// event). Smaller chunks exercise the estimator's aggregation.
	Chunk int64
}

// Run replays the configured window's counts.
func (s *CountSource) Run(ctx context.Context, emit func(Event) bool) error {
	for i := 0; i < s.Days; i++ {
		d := s.From.AddDays(i)
		for _, c := range s.Gen.DayCounts(d) {
			remaining := c.Samples
			for remaining > 0 {
				w := remaining
				if s.Chunk > 0 && w > s.Chunk {
					w = s.Chunk
				}
				remaining -= w
				imp := &Impression{Day: d, CC: c.CC, ASN: c.ASN, Weight: w}
				if !emit(Event{Day: d, Pre: imp}) {
					return nil
				}
			}
		}
	}
	return nil
}
