package stream

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/apnic"
	"repro/internal/dates"
	"repro/internal/itu"
	"repro/internal/world"
)

var (
	worldOnce sync.Once
	testW     *world.World
)

func testWorld() *world.World {
	worldOnce.Do(func() { testW = world.MustBuild(world.Config{Seed: 11}) })
	return testW
}

func newTestGen() *apnic.Generator {
	w := testWorld()
	return apnic.New(w, itu.New(w, 11), 11)
}

// reportsEqual demands exact equality: same floats, same ranks, same
// row order — the convergence contract.
func reportsEqual(t *testing.T, got, want *apnic.Report) {
	t.Helper()
	if got.Date != want.Date || got.Window != want.Window {
		t.Fatalf("header mismatch: got (%s, %d), want (%s, %d)", got.Date, got.Window, want.Date, want.Window)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("row count mismatch: got %d, want %d", len(got.Rows), len(want.Rows))
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		for i := range got.Rows {
			if got.Rows[i] != want.Rows[i] {
				t.Fatalf("row %d mismatch:\n got  %+v\n want %+v", i, got.Rows[i], want.Rows[i])
			}
		}
		t.Fatal("rows differ")
	}
}

// TestGenerateEqualsAssembledCounts pins the refactor under the
// streaming work: Generate must be exactly DayCounts + AssembleReport.
func TestGenerateEqualsAssembledCounts(t *testing.T) {
	gen := newTestGen()
	d := dates.MustParse("2024-04-21")
	reportsEqual(t, gen.AssembleReport(d, gen.DayCounts(d)), gen.Generate(d))
}

// TestStreamConvergence runs the full pipeline — count-replay source,
// admission edge, batcher, estimator sink — over three simulated days
// and requires every drained day's rolling report to equal the batch
// generator's, exactly.
func TestStreamConvergence(t *testing.T) {
	gen := newTestGen()
	est := NewRollingEstimator(gen)
	from := dates.MustParse("2024-04-20")
	const days = 3

	p, err := New(Config{
		Source:    &CountSource{Gen: gen, From: from, Days: days, Chunk: 37},
		Publisher: &EstimatorSink{Est: est},
		MaxBatch:  64,
		QueueLen:  32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	st := p.Stats()
	if st.Emitted != st.Accepted || st.SourceShed != 0 {
		t.Fatalf("block policy lost events: %+v", st)
	}
	if st.Accepted != st.Published || st.Filtered != 0 || st.PublishFailed != 0 {
		t.Fatalf("ledger does not reconcile: %+v", st)
	}

	for i := 0; i < days; i++ {
		d := from.AddDays(i)
		reportsEqual(t, est.Report(d), gen.Generate(d))
	}

	// The live snapshot serves the newest day.
	d, rev, rep, ok := est.Snapshot()
	if !ok || d != from.AddDays(days-1) {
		t.Fatalf("Snapshot day = %s ok=%v, want %s", d, ok, from.AddDays(days-1))
	}
	if rev == 0 || len(rep.Rows) == 0 {
		t.Fatalf("empty snapshot: rev=%d rows=%d", rev, len(rep.Rows))
	}
	reportsEqual(t, rep, gen.Generate(d))
}

// TestStreamConvergenceUnchunked covers the one-event-per-AS replay
// shape (Chunk 0) and out-of-order delivery across a wider batcher.
func TestStreamConvergenceUnchunked(t *testing.T) {
	gen := newTestGen()
	est := NewRollingEstimator(gen)
	d := dates.MustParse("2024-02-29")

	p, err := New(Config{
		Source:    &CountSource{Gen: gen, From: d, Days: 1},
		Publisher: &EstimatorSink{Est: est},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, est.Report(d), gen.Generate(d))
}

// TestRollingWindowEviction holds the sliding-window semantics: only
// the newest Window days stay resident, evicted days report empty, and
// late impressions for evicted days are counted, not applied.
func TestRollingWindowEviction(t *testing.T) {
	gen := newTestGen()
	gen.Window = 2
	est := NewRollingEstimator(gen)
	from := dates.MustParse("2024-03-01")
	const days = 4

	p, err := New(Config{
		Source:    &CountSource{Gen: gen, From: from, Days: days, Chunk: 1000},
		Publisher: &EstimatorSink{Est: est},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	if got := est.DaysHeld(); got != 2 {
		t.Fatalf("DaysHeld = %d, want 2", got)
	}
	if est.Evicted() != 2 {
		t.Fatalf("Evicted = %d, want 2", est.Evicted())
	}
	// The retained days still converge exactly.
	for i := days - 2; i < days; i++ {
		d := from.AddDays(i)
		reportsEqual(t, est.Report(d), gen.Generate(d))
	}
	// An evicted day assembles empty.
	if rows := est.Report(from).Rows; len(rows) != 0 {
		t.Fatalf("evicted day has %d rows, want 0", len(rows))
	}
	// A late impression for an evicted day is dropped and counted.
	before := est.Report(from.AddDays(days - 1))
	est.Observe(Impression{Day: from, CC: "FR", ASN: 64500, Weight: 5})
	if est.Late() != 1 {
		t.Fatalf("Late = %d, want 1", est.Late())
	}
	reportsEqual(t, est.Report(from.AddDays(days-1)), before)
}

// TestEstimatorReportCache verifies the one-entry report cache returns
// the identical assembled report until the estimate changes.
func TestEstimatorReportCache(t *testing.T) {
	gen := newTestGen()
	est := NewRollingEstimator(gen)
	d := dates.MustParse("2024-04-21")
	for _, c := range gen.DayCounts(d) {
		est.Observe(Impression{Day: d, CC: c.CC, ASN: c.ASN, Weight: c.Samples})
	}
	r1 := est.Report(d)
	r2 := est.Report(d)
	if r1 != r2 {
		t.Fatal("report cache missed on an unchanged estimate")
	}
	est.Observe(Impression{Day: d, CC: "FR", ASN: 1, Weight: 1})
	if r3 := est.Report(d); r3 == r1 {
		t.Fatal("report cache served a stale report after a mutation")
	}
}
