package stream

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cdnlog"
	"repro/internal/dates"
	"repro/internal/orgs"
)

// sourceFunc adapts a closure to the Source interface.
type sourceFunc func(ctx context.Context, emit func(Event) bool) error

func (f sourceFunc) Run(ctx context.Context, emit func(Event) bool) error { return f(ctx, emit) }

// recordingSink captures every published batch and counts Close calls.
type recordingSink struct {
	mu      sync.Mutex
	batches []Batch
	closed  int
	first   chan struct{} // closed on first Publish, if non-nil
	gate    chan struct{} // Publish blocks on this once, if non-nil
}

func (r *recordingSink) Publish(b Batch) error {
	if r.gate != nil {
		<-r.gate
		r.gate = nil
	}
	r.mu.Lock()
	imps := append([]Impression(nil), b.Imps...)
	r.batches = append(r.batches, Batch{Seq: b.Seq, Imps: imps})
	if r.first != nil {
		close(r.first)
		r.first = nil
	}
	r.mu.Unlock()
	return nil
}

func (r *recordingSink) Close() error {
	r.mu.Lock()
	r.closed++
	r.mu.Unlock()
	return nil
}

func (r *recordingSink) impressions() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, b := range r.batches {
		n += int64(len(b.Imps))
	}
	return n
}

func preEvent(day dates.Date, asn uint32, weight int64) Event {
	return Event{Day: day, Pre: &Impression{Day: day, CC: "FR", ASN: asn, Weight: weight}}
}

// TestShedPolicy wedges the publisher behind a gate so every queue
// fills, and verifies the open-loop contract: the source is never
// delayed, overflow is shed and counted, and the ledger still
// reconciles exactly — nothing accepted is ever lost.
func TestShedPolicy(t *testing.T) {
	const total = 1000
	d := dates.MustParse("2024-04-21")
	gate := make(chan struct{})
	sink := &recordingSink{gate: gate}

	src := sourceFunc(func(ctx context.Context, emit func(Event) bool) error {
		for i := 0; i < total; i++ {
			if !emit(preEvent(d, uint32(i%7+1), 1)) {
				break
			}
		}
		close(gate) // source done; let the publisher drain
		return nil
	})

	p, err := New(Config{
		Source:        src,
		Publisher:     sink,
		OnFull:        Shed,
		QueueLen:      1,
		BatchQueueLen: 1,
		MaxBatch:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	st := p.Stats()
	if st.Emitted != total {
		t.Fatalf("Emitted = %d, want %d", st.Emitted, total)
	}
	if st.SourceShed == 0 {
		t.Fatal("expected sheds with a wedged publisher and queue length 1")
	}
	if st.Emitted != st.Accepted+st.SourceShed {
		t.Fatalf("admission ledger broken: emitted %d != accepted %d + shed %d",
			st.Emitted, st.Accepted, st.SourceShed)
	}
	if st.Accepted != st.Published || st.Filtered != 0 || st.PublishFailed != 0 {
		t.Fatalf("drain ledger broken: %+v", st)
	}
	if got := sink.impressions(); got != st.Published {
		t.Fatalf("publisher saw %d impressions, counters say %d", got, st.Published)
	}
	if sink.closed != 1 {
		t.Fatalf("Close called %d times, want 1", sink.closed)
	}
}

// testClock is a manual clock: After always hands back the same
// unbuffered channel, so the test fires timers by sending on it.
type testClock struct{ ch chan time.Time }

func (c *testClock) Now() time.Time                       { return time.Time{} }
func (c *testClock) After(time.Duration) <-chan time.Time { return c.ch }

// TestAgeFlush proves a quiet stream still publishes: three impressions
// sit below MaxBatch while the source stays alive, and only the age
// timer (driven by the injected clock) can flush them.
func TestAgeFlush(t *testing.T) {
	d := dates.MustParse("2024-04-21")
	clk := &testClock{ch: make(chan time.Time)}
	first := make(chan struct{})
	sink := &recordingSink{first: first}

	src := sourceFunc(func(ctx context.Context, emit func(Event) bool) error {
		for i := 0; i < 3; i++ {
			if !emit(preEvent(d, uint32(i+1), 1)) {
				return nil
			}
		}
		<-first // hold the stream open until a batch has been published
		return nil
	})

	p, err := New(Config{
		Source:    src,
		Publisher: sink,
		MaxBatch:  100, // never reached
		MaxAge:    time.Minute,
		Clock:     clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()

	// The only way anything can flush is the age timer: MaxBatch is out
	// of reach and the source blocks until the first publish. Fire it.
	clk.ch <- time.Time{}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := sink.impressions(); got != 3 {
		t.Fatalf("published %d impressions, want 3", got)
	}
	sink.mu.Lock()
	nb := len(sink.batches)
	firstLen := len(sink.batches[0].Imps)
	sink.mu.Unlock()
	if nb < 1 || firstLen >= 100 {
		t.Fatalf("first flush should be age-driven: %d batches, first has %d imps", nb, firstLen)
	}
}

// TestEnricherMatchesAggregator replays one day of sampled records both
// through the batch cdnlog.Aggregator and through the streaming
// pipeline's CDNEnricher, and demands identical attribution: the same
// per-(country, org) request and byte totals, and the same drop
// counts per reason.
func TestEnricherMatchesAggregator(t *testing.T) {
	w := testWorld()
	s := cdnlog.NewSampler(w, 7)
	db := w.RoutingDB()
	d := dates.MustParse("2024-04-21")
	const perOrg, bots = 4, 50
	countries := []string{"FR", "JP"}

	agg := cdnlog.NewAggregator(db, w.Registry, bots)
	for _, cc := range countries {
		s.EachDayRecord(cc, d, perOrg, func(rec cdnlog.Record) bool {
			agg.Add(rec)
			return true
		})
	}

	sink := &recordingSink{}
	p, err := New(Config{
		Source:    &SamplerSource{Sampler: s, Countries: countries, From: d, Days: 1, PerOrg: perOrg},
		Enrich:    &CDNEnricher{DB: db, Registry: w.Registry, BotThreshold: bots},
		Publisher: sink,
		MaxBatch:  128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Fold published impressions to (country, org) through the same
	// registry the aggregator used.
	type pairSum struct{ reqs, bytes int64 }
	got := map[orgs.CountryOrg]*pairSum{}
	for _, b := range sink.batches {
		for _, imp := range b.Imps {
			org, ok := w.Registry.ByASN(imp.ASN)
			if !ok {
				t.Fatalf("published impression with unassigned ASN %d", imp.ASN)
			}
			key := orgs.CountryOrg{Country: imp.CC, Org: org.ID}
			ps := got[key]
			if ps == nil {
				ps = &pairSum{}
				got[key] = ps
			}
			ps.reqs += imp.Weight
			ps.bytes += imp.Bytes
		}
	}

	var wantPairs int
	var wantBots int64
	for key, st := range agg.Stats() {
		wantBots += st.Bots
		if st.Requests == 0 {
			continue // all-bot pair: the stream publishes nothing for it
		}
		wantPairs++
		ps := got[key]
		if ps == nil {
			t.Fatalf("pair %v missing from stream output", key)
		}
		if ps.reqs != st.Requests || ps.bytes != st.Bytes {
			t.Fatalf("pair %v: stream (%d reqs, %d bytes) != batch (%d, %d)",
				key, ps.reqs, ps.bytes, st.Requests, st.Bytes)
		}
	}
	if len(got) != wantPairs {
		t.Fatalf("stream produced %d pairs, batch %d", len(got), wantPairs)
	}

	if v := p.filtered[ReasonBot].Value(); v != wantBots {
		t.Fatalf("filtered{bot} = %d, aggregator counted %d", v, wantBots)
	}
	if v := p.filtered[ReasonUnrouted].Value(); v != agg.Unrouted() {
		t.Fatalf("filtered{unrouted} = %d, aggregator counted %d", v, agg.Unrouted())
	}
	if v := p.filtered[ReasonUnassigned].Value(); v != agg.Unassigned() {
		t.Fatalf("filtered{unassigned} = %d, aggregator counted %d", v, agg.Unassigned())
	}
}

// TestNoEnricherDropsRawRecords pins the nil-enricher rule: raw records
// are unresolvable, pre-resolved impressions still pass.
func TestNoEnricherDropsRawRecords(t *testing.T) {
	d := dates.MustParse("2024-04-21")
	sink := &recordingSink{}
	src := sourceFunc(func(ctx context.Context, emit func(Event) bool) error {
		emit(Event{Day: d}) // raw record, no enricher
		emit(preEvent(d, 1, 2))
		return nil
	})
	p, err := New(Config{Source: src, Publisher: sink})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Filtered != 1 || p.filtered[ReasonUnresolvable].Value() != 1 {
		t.Fatalf("want 1 unresolvable drop, got %+v", st)
	}
	if got := sink.impressions(); got != 1 {
		t.Fatalf("published %d impressions, want 1", got)
	}
}

// TestWriterSink checks the CSV line shape and the sticky-error rule.
func TestWriterSink(t *testing.T) {
	d := dates.MustParse("2024-04-21")
	var buf bytes.Buffer
	sink := &WriterSink{W: &buf}
	b := Batch{Seq: 1, Imps: []Impression{
		{Day: d, CC: "FR", ASN: 64500, Weight: 3, Bytes: 1234},
		{Day: d.AddDays(1), CC: "JP", ASN: 64501, Weight: 1, Bytes: 0},
	}}
	if err := sink.Publish(b); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	want := "2024-04-21,FR,64500,3,1234\n2024-04-22,JP,64501,1,0\n"
	if buf.String() != want {
		t.Fatalf("CSV output:\n got  %q\n want %q", buf.String(), want)
	}
}

type failWriter struct{ err error }

func (f failWriter) Write(p []byte) (int, error) { return 0, f.err }

type failingSink struct{ err error }

func (f failingSink) Publish(Batch) error { return f.err }
func (f failingSink) Close() error        { return nil }

// TestPublisherErrorsAreCountedNotFatal drives batches into a sink that
// rejects every Publish: Run survives (a log pipeline outlives its
// sink's bad moments), and PublishFailed accounts for every impression.
func TestPublisherErrorsAreCountedNotFatal(t *testing.T) {
	d := dates.MustParse("2024-04-21")
	src := sourceFunc(func(ctx context.Context, emit func(Event) bool) error {
		for i := 0; i < 10; i++ {
			if !emit(preEvent(d, uint32(i+1), 1)) {
				break
			}
		}
		return nil
	})
	p, err := New(Config{Source: src, Publisher: failingSink{err: errors.New("sink down")}, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if runErr := p.Run(context.Background()); runErr != nil {
		t.Fatalf("publish errors must not be fatal, Run returned %v", runErr)
	}
	st := p.Stats()
	if st.PublishFailed != 10 || st.Published != 0 {
		t.Fatalf("want all 10 impressions counted failed: %+v", st)
	}
	if st.Published+st.PublishFailed != st.Accepted {
		t.Fatalf("ledger broken with failing sink: %+v", st)
	}
}

// TestWriterSinkStickyError pins the sticky-error rule: after a write
// failure every later Publish refuses with the same error and Close
// surfaces it.
func TestWriterSinkStickyError(t *testing.T) {
	d := dates.MustParse("2024-04-21")
	werr := errors.New("disk full")
	sink := &WriterSink{W: failWriter{err: werr}}
	// Overflow bufio's buffer so the first Publish hits the writer.
	big := Batch{Seq: 1, Imps: make([]Impression, 0, 200)}
	for i := 0; i < 200; i++ {
		big.Imps = append(big.Imps, Impression{Day: d, CC: "FR", ASN: 64500, Weight: 1, Bytes: 123456789})
	}
	if err := sink.Publish(big); !errors.Is(err, werr) {
		t.Fatalf("Publish error = %v, want the write error", err)
	}
	if err := sink.Publish(Batch{Seq: 2, Imps: big.Imps[:1]}); !errors.Is(err, werr) {
		t.Fatalf("sticky error lost: %v", err)
	}
	if err := sink.Close(); !errors.Is(err, werr) {
		t.Fatalf("Close error = %v, want the write error", err)
	}
}

// TestTeeFansOut delivers every batch to every publisher.
func TestTeeFansOut(t *testing.T) {
	d := dates.MustParse("2024-04-21")
	a, b := &recordingSink{}, &recordingSink{}
	src := sourceFunc(func(ctx context.Context, emit func(Event) bool) error {
		for i := 0; i < 5; i++ {
			emit(preEvent(d, uint32(i+1), 1))
		}
		return nil
	})
	p, err := New(Config{Source: src, Publisher: Tee{a, b}, MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if a.impressions() != 5 || b.impressions() != 5 {
		t.Fatalf("tee delivered %d/%d impressions, want 5/5", a.impressions(), b.impressions())
	}
	if a.closed != 1 || b.closed != 1 {
		t.Fatalf("tee closed %d/%d times, want 1/1", a.closed, b.closed)
	}
}

// TestConfigValidation rejects incomplete configs.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Publisher: &recordingSink{}}); err == nil || !strings.Contains(err.Error(), "Source") {
		t.Fatalf("missing source: err = %v", err)
	}
	if _, err := New(Config{Source: sourceFunc(func(context.Context, func(Event) bool) error { return nil })}); err == nil || !strings.Contains(err.Error(), "Publisher") {
		t.Fatalf("missing publisher: err = %v", err)
	}
}
