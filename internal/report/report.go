// Package report renders experiment results as aligned text tables and
// simple series plots, so every table and figure of the paper can be
// regenerated as terminal output by the experiment runners and benches.
package report

import (
	"bytes"
	"fmt"
	"math"
	"strings"
)

// Table renders rows under headers with column alignment.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Pct formats a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// Count formats large counts with thousands separators.
func Count(n int64) string {
	s := fmt.Sprintf("%d", n)
	if n < 0 {
		return s
	}
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}

// Series renders an (x, y) series as lines of "x<tab>y" — a plottable
// form for figure data.
func Series(name string, xs, ys []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# series: %s\n", name)
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%g\t%g\n", xs[i], ys[i])
	}
	return b.String()
}

// Bar renders a labelled horizontal bar of width proportional to
// value/max (for the Figure 3 overlap bars).
func Bar(label string, value, max float64, width int) string {
	if max <= 0 || width <= 0 {
		return fmt.Sprintf("%-28s |\n", label)
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return fmt.Sprintf("%-28s |%s%s| %s\n", label,
		strings.Repeat("#", n), strings.Repeat(" ", width-n), Pct(100*value/max))
}

// CDFPlot renders empirical CDF curves as ASCII art: x ascending, F(x)
// from 0 at the bottom to 1 at the top. Multiple named curves share the
// axes; each is drawn with its own rune. Inputs are (x, F(x)) point
// series as produced by stats.ECDF.Points.
func CDFPlot(names []string, curves [][2][]float64, width, height int) string {
	if width < 10 {
		width = 10
	}
	if height < 5 {
		height = 5
	}
	marks := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	// Global x range.
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, c := range curves {
		for _, x := range c[0] {
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
		}
	}
	if math.IsInf(minX, 1) || minX == maxX {
		return "(no data)\n"
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = bytes.Repeat([]byte{' '}, width)
	}
	for ci, c := range curves {
		mark := marks[ci%len(marks)]
		xs, fs := c[0], c[1]
		for i := range xs {
			col := int((xs[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int(fs[i]*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	for i, row := range grid {
		f := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%4.2f |%s|\n", f, string(row))
	}
	fmt.Fprintf(&b, "      %-*.3g%*.3g\n", width/2, minX, width-width/2, maxX)
	for i, name := range names {
		fmt.Fprintf(&b, "  %c = %s\n", marks[i%len(marks)], name)
	}
	return b.String()
}
