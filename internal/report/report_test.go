package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"A", "Long header"}, [][]string{
		{"x", "1"},
		{"longer-cell", "2"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	// All rows equal width under alignment.
	w := len(lines[0])
	for i, l := range lines {
		if len(l) != w {
			t.Errorf("line %d width %d != %d:\n%s", i, len(l), w, out)
		}
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Error("missing separator row")
	}
	if !strings.Contains(out, "longer-cell") {
		t.Error("cell content lost")
	}
}

func TestTableEmptyRows(t *testing.T) {
	out := Table([]string{"A"}, nil)
	if !strings.Contains(out, "A") {
		t.Error("headers missing")
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Errorf("F = %q", F(3.14159, 2))
	}
	if Pct(12.34) != "12.3%" {
		t.Errorf("Pct = %q", Pct(12.34))
	}
}

func TestCount(t *testing.T) {
	cases := map[int64]string{
		0:          "0",
		7:          "7",
		999:        "999",
		1000:       "1,000",
		1234567:    "1,234,567",
		1000000000: "1,000,000,000",
		-5:         "-5",
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSeries(t *testing.T) {
	out := Series("demo", []float64{1, 2}, []float64{10, 20})
	if !strings.HasPrefix(out, "# series: demo\n") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "1\t10\n") || !strings.Contains(out, "2\t20\n") {
		t.Errorf("points missing:\n%s", out)
	}
	// Mismatched lengths truncate to the shorter side.
	short := Series("s", []float64{1, 2, 3}, []float64{9})
	if strings.Count(short, "\n") != 2 {
		t.Errorf("mismatched series not truncated:\n%s", short)
	}
}

func TestBar(t *testing.T) {
	out := Bar("label", 50, 100, 10)
	if !strings.Contains(out, "#####") {
		t.Errorf("bar fill wrong: %q", out)
	}
	if !strings.Contains(out, "50.0%") {
		t.Errorf("bar percentage wrong: %q", out)
	}
	// Value above max clamps.
	over := Bar("label", 200, 100, 10)
	if strings.Count(over, "#") != 10 {
		t.Errorf("overfull bar not clamped: %q", over)
	}
	// Degenerate max.
	if out := Bar("label", 1, 0, 10); !strings.Contains(out, "label") {
		t.Errorf("zero-max bar broken: %q", out)
	}
}

func TestCDFPlot(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	fs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	out := CDFPlot([]string{"demo"}, [][2][]float64{{xs, fs}}, 20, 6)
	if !strings.Contains(out, "*") {
		t.Fatalf("no points plotted:\n%s", out)
	}
	if !strings.Contains(out, "demo") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "1.00 |") || !strings.Contains(out, "0.00 |") {
		t.Errorf("axis labels missing:\n%s", out)
	}
	// Two curves use distinct marks.
	out2 := CDFPlot([]string{"a", "b"}, [][2][]float64{{xs, fs}, {xs, fs}}, 20, 6)
	if !strings.Contains(out2, "o = b") {
		t.Errorf("second curve legend missing:\n%s", out2)
	}
}

func TestCDFPlotDegenerate(t *testing.T) {
	if out := CDFPlot(nil, nil, 20, 6); out != "(no data)\n" {
		t.Errorf("empty plot = %q", out)
	}
	same := [][2][]float64{{{3, 3}, {0.5, 1}}}
	if out := CDFPlot([]string{"x"}, same, 20, 6); out != "(no data)\n" {
		t.Errorf("degenerate x range = %q", out)
	}
	// Tiny dimensions are clamped, not broken.
	out := CDFPlot([]string{"x"}, [][2][]float64{{{1, 2}, {0.5, 1}}}, 1, 1)
	if !strings.Contains(out, "*") {
		t.Error("clamped plot lost data")
	}
}
