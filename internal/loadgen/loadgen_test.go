package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apnic"
	"repro/internal/apnicweb"
	"repro/internal/dates"
	"repro/internal/itu"
	"repro/internal/obsv"
	"repro/internal/stream"
	"repro/internal/world"
)

var loadW = world.MustBuild(world.Config{Seed: 11})

// loadServer starts a full seven-dataset multi-server over a two-week
// window — narrow enough that the Zipf/recency model keeps the cache
// warm and a short burst finishes in test time.
func loadServer(t *testing.T) (*apnicweb.Server, *httptest.Server, ModelConfig) {
	t.Helper()
	first, last := dates.New(2024, 6, 1), dates.New(2024, 6, 14)
	srv := apnicweb.NewMultiServer(loadW, 11, first, last, 30)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	cfg := DefaultModel(first, last)
	cfg.HotDayHalfLife = 2
	cfg.CondFraction = 0.8

	// A real per-AS series path, keyed off the window's last frame.
	f, err := srv.Registry().Frame("apnic", last)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SeriesPaths = []string{
		"/v1/apnic/series/AS" + f.Col("AS").Cell(0) +
			"?cc=" + f.Col("CC").Cell(0) +
			"&from=" + first.String() + "&to=" + first.AddDays(4).String(),
	}
	return srv, ts, cfg
}

// TestClosedLoopBurst is the e2e load satellite: a short closed-loop
// burst with herds against the real handler stack must finish with zero
// errors, byte-identical repeated bodies (VerifyBodies), revalidations
// actually hitting 304, and sane per-route quantiles.
func TestClosedLoopBurst(t *testing.T) {
	srv, ts, model := loadServer(t)
	metrics := obsv.NewRegistry()
	res, err := Run(context.Background(), Config{
		BaseURL:      ts.URL,
		Model:        model,
		Seed:         11,
		Mode:         Closed,
		Concurrency:  8,
		Requests:     400,
		HerdEvery:    100,
		HerdSize:     8,
		VerifyBodies: true,
		Metrics:      metrics,
		Client:       ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}

	if res.Errors != 0 {
		t.Errorf("%d errors in a clean burst", res.Errors)
	}
	if res.Requests < 400 {
		t.Errorf("only %d requests completed, want >= 400", res.Requests)
	}
	if res.Herds != 4 {
		t.Errorf("herds = %d, want 4 (400 dispatches / HerdEvery 100)", res.Herds)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput %v", res.Throughput)
	}

	var notModified, mismatches int64
	seen := map[string]bool{}
	for _, rs := range res.Routes {
		seen[rs.Route] = true
		notModified += rs.NotModified
		mismatches += rs.Mismatches
		if rs.Requests == 0 {
			t.Errorf("route %s recorded no requests", rs.Route)
		}
		if rs.Errors != 0 {
			t.Errorf("route %s: %d errors", rs.Route, rs.Errors)
		}
		if rs.P50 < 0 || rs.P99 < rs.P50 || rs.P999 < rs.P99 {
			t.Errorf("route %s quantiles not monotone: %+v", rs.Route, rs)
		}
	}
	for _, route := range []string{RouteReportBinz, RouteReportBin, RouteReportCSV, RouteReportJSON, RouteLegacyCSV, RouteDates, RouteSeries, RouteHerd} {
		if !seen[route] {
			t.Errorf("route %s missing from a 400-request burst", route)
		}
	}
	if mismatches != 0 {
		t.Errorf("%d body mismatches; responses must be byte-identical per path+encoding", mismatches)
	}
	if notModified == 0 {
		t.Error("no 304s despite CondFraction 0.8; conditional replays are not revalidating")
	}
	// The runner's 304 count and the server's must agree.
	if got := srv.Metrics().Counter("apnicweb_not_modified_total").Value(); got != notModified {
		t.Errorf("server saw %d 304s, runner recorded %d", got, notModified)
	}
	if h := metrics.Histogram(obsv.Label("loadgen_request_seconds", "route", RouteReportCSV), nil); h.Count() == 0 {
		t.Error("latency histogram empty; metrics plumbing broken")
	}
}

// TestOpenLoopSchedule: the open loop dispatches on its own clock and
// finishes near the configured rate x duration, again with zero errors.
func TestOpenLoopSchedule(t *testing.T) {
	_, ts, model := loadServer(t)
	res, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Model:       model,
		Seed:        23,
		Mode:        Open,
		Concurrency: 8,
		Rate:        200,
		Duration:    700 * time.Millisecond,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("%d errors", res.Errors)
	}
	// The schedule wants ~140 dispatches. Completion depends on server
	// speed (cold caches under -race answer slowly, and in-flight work is
	// abandoned at the deadline — that's the open-loop contract), so pin
	// the dispatch clock, not the completions, and only at an
	// order-of-magnitude floor for loaded CI machines.
	if res.Dispatched < 20 {
		t.Errorf("only %d dispatches in 700ms at 200/s", res.Dispatched)
	}
	if res.Requests < 1 {
		t.Error("no requests completed")
	}
	if res.Mode != Open || res.RateHz != 200 {
		t.Errorf("run identity %+v", res)
	}
}

// TestRunValidation: impossible configs fail fast instead of hanging.
func TestRunValidation(t *testing.T) {
	_, _, model := loadServer(t)
	bad := []Config{
		{BaseURL: "x", Model: model, Concurrency: 0, Requests: 1},
		{BaseURL: "x", Model: model, Concurrency: 1},                          // no budget
		{BaseURL: "x", Model: model, Concurrency: 1, Requests: 1, Mode: Open}, // no rate
		{BaseURL: "x", Model: ModelConfig{}, Concurrency: 1, Requests: 1},     // bad model
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestClosedLoopContextCancel: cancelling the context stops an
// unbounded-requests run promptly.
func TestClosedLoopContextCancel(t *testing.T) {
	_, ts, model := loadServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res *RunResult
	go func() {
		defer close(done)
		res, _ = Run(ctx, Config{
			BaseURL:     ts.URL,
			Model:       model,
			Seed:        5,
			Mode:        Closed,
			Concurrency: 4,
			Duration:    time.Hour, // budget that would outlive the test
			Client:      ts.Client(),
		})
	}()
	time.Sleep(150 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop after cancel")
	}
	// Completions depend on server speed (in-flight work at cancel is
	// abandoned, unrecorded); the stable invariants are that the run
	// returned a ledger and its workers had started dispatching.
	if res == nil || res.Dispatched == 0 {
		t.Fatalf("cancelled run returned %+v", res)
	}
}

// TestOpenLoopShedAccounting is the regression test for the shed
// ledger: wedge the server so the open-loop queue fills, and pin the
// coordinated-omission invariants —
//
//   - sheds land in the per-route request counts (the intended-start
//     denominator), each with a latency sample;
//   - sum of per-route Shed equals RunResult.Dropped;
//   - sheds are never counted as errors;
//   - completions + sheds reconcile with the recorded request total.
func TestOpenLoopShedAccounting(t *testing.T) {
	var served atomic.Int64
	gate := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-gate // every request wedges until the schedule has finished
		served.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	// One worker, queue capacity Concurrency*4 = 4: the worker wedges on
	// its first request, the queue fills within a handful of ticks, and
	// the remaining dispatches of the 200-tick schedule (100ms at
	// 2000/s) shed. The gate opens well after the schedule has drained;
	// every invariant below holds regardless of where the release lands,
	// the timing margin only maximizes the shed count.
	const budget = 200
	go func() {
		time.Sleep(500 * time.Millisecond)
		close(gate)
	}()

	model := DefaultModel(dates.New(2024, 4, 1), dates.New(2024, 4, 14))
	res, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Model:       model,
		Seed:        31,
		Mode:        Open,
		Concurrency: 1,
		Requests:    budget,
		Rate:        2000,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}

	if res.Dropped == 0 {
		t.Fatal("no sheds despite a wedged single worker and a 4-slot queue")
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors; sheds must never be double-counted as errors", res.Errors)
	}
	var shed, reqs, errs int64
	for _, rt := range res.Routes {
		shed += rt.Shed
		reqs += rt.Requests
		errs += rt.Errors
		if rt.Shed > rt.Requests {
			t.Fatalf("route %s: Shed %d > Requests %d", rt.Route, rt.Shed, rt.Requests)
		}
	}
	if shed != res.Dropped {
		t.Fatalf("per-route Shed sums to %d, RunResult.Dropped is %d", shed, res.Dropped)
	}
	if errs != 0 {
		t.Fatalf("route ledgers carry %d errors", errs)
	}
	if reqs != res.Requests {
		t.Fatalf("route requests sum to %d, RunResult.Requests is %d", reqs, res.Requests)
	}
	// Completions + sheds == recorded requests: nothing lost, nothing
	// double-counted. (In-flight/queued dispatches at close are neither.)
	if completed := res.Requests - res.Dropped; completed != served.Load() {
		t.Fatalf("ledger says %d completions, server answered %d", completed, served.Load())
	}
}

// TestLiveRouteTolerates503 checks the live-poll share against a server
// with no live stream attached: every live request 503s by contract and
// none of them may count as an error.
func TestLiveRouteTolerates503(t *testing.T) {
	_, ts, model := loadServer(t)
	model.LiveCountries = []string{"FR", "DE"}
	res, err := Run(context.Background(), Config{
		BaseURL:      ts.URL,
		Model:        model,
		Seed:         11,
		Mode:         Closed,
		Concurrency:  4,
		Requests:     300,
		VerifyBodies: true,
		Client:       ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rt := range res.Routes {
		if rt.Route != RouteLive {
			continue
		}
		found = true
		if rt.Requests == 0 {
			t.Fatal("live share produced no requests")
		}
		if rt.Errors != 0 {
			t.Fatalf("%d live errors; contract 503s must be tolerated", rt.Errors)
		}
	}
	if !found {
		t.Fatal("no live route in the ledger")
	}
}

// TestLiveRouteServes checks the live share against an attached, primed
// estimator: 200s flow, conditional polls revalidate to 304, and the
// mutable body never trips the immutability verifier.
func TestLiveRouteServes(t *testing.T) {
	srv, ts, model := loadServer(t)
	gen := apnic.New(loadW, itu.New(loadW, 11), 11)
	est := stream.NewRollingEstimator(gen)
	last := model.Last
	for _, c := range gen.DayCounts(last) {
		est.Observe(stream.Impression{Day: last, CC: c.CC, ASN: c.ASN, Weight: c.Samples})
	}
	srv.SetLive(est)

	model.LiveCountries = []string{"FR", "DE", "US"}
	model.CondFraction = 1 // every repeat is conditional: force the 304 path
	res, err := Run(context.Background(), Config{
		BaseURL:      ts.URL,
		Model:        model,
		Seed:         11,
		Mode:         Closed,
		Concurrency:  4,
		Requests:     400,
		VerifyBodies: true,
		Client:       ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range res.Routes {
		if rt.Route != RouteLive {
			continue
		}
		if rt.Requests == 0 {
			t.Fatal("live share produced no requests")
		}
		if rt.Errors != 0 || rt.Mismatches != 0 {
			t.Fatalf("live errors=%d mismatches=%d on a conforming server", rt.Errors, rt.Mismatches)
		}
		if rt.NotModified == 0 {
			t.Fatal("no 304s despite a quiet estimator and conditional polls")
		}
		return
	}
	t.Fatal("no live route in the ledger")
}

// TestLiveRevisionETagViolation drives the runner against a server that
// breaks the revision-ETag contract — a 200 re-sending the exact tag the
// client presented in If-None-Match — and expects a mismatch, since equal
// tags promise equal bytes and the correct answer was 304.
func TestLiveRevisionETagViolation(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("ETag", `"live-FR-100-1"`)
		w.Write([]byte(`{"cc":"FR"}`))
	}))
	t.Cleanup(bad.Close)

	r := &runner{cfg: Config{BaseURL: bad.URL, VerifyBodies: true}, client: bad.Client(), recs: map[string]*recorder{}}
	plan := Request{Route: RouteLive, Path: "/v1/live/FR", Conditional: true}
	r.do(context.Background(), plan, time.Now()) // primes the ETag cache
	r.do(context.Background(), plan, time.Now()) // conditional; 200 + same tag = violation

	st := r.recs[RouteLive].finalize()
	if st.Mismatches != 1 {
		t.Fatalf("mismatches = %d, want 1", st.Mismatches)
	}
	if st.Errors != 1 {
		t.Fatalf("errors = %d, want the violating response counted once", st.Errors)
	}
}
