// Package loadgen is the load generator behind cmd/loadgen: a synthetic
// client population for the multi-dataset report server with a realistic
// access model (Zipf dataset popularity, recency-biased day selection,
// conditional revalidations, gzip negotiation, thundering herds on
// cache-cold days) driven in either a closed loop (N clients, each
// waiting for its response before issuing the next request) or an open
// loop (requests dispatched on a fixed schedule regardless of how slowly
// the server answers — the arrival model that actually exposes queueing
// collapse, which a closed loop structurally cannot).
//
// Latency in the open loop is measured from each request's *intended*
// start time, not from when a worker got around to sending it, so slow
// responses cannot hide behind their own backpressure (the classic
// coordinated-omission mistake).
package loadgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dates"
)

// Route kinds emitted by the model. These are also the bounded label set
// for per-route stats, so they stay a small fixed vocabulary.
const (
	RouteReportBinz = "report-binz" // /v1/{dataset}/reports/{date}.binz
	RouteReportBin  = "report-bin"  // /v1/{dataset}/reports/{date}.bin
	RouteReportCSV  = "report-csv"  // /v1/{dataset}/reports/{date}.csv
	RouteReportJSON = "report-json" // /v1/{dataset}/reports/{date}
	RouteLegacyCSV  = "legacy-csv"  // /v1/reports/{date}.csv
	RouteDates      = "dates"       // /v1/{dataset}/dates
	RouteSeries     = "series"      // caller-provided series paths
	RouteLive       = "live"        // /v1/live/{country} rolling estimates
	RouteHerd       = "herd"        // thundering-herd cold-day bursts
)

// routeMix is the cumulative distribution over route kinds, modelled on
// a dashboard-plus-bulk-export workload: a small polling share hits the
// live rolling estimates, over a quarter of traffic takes the binary
// frame plane (programmatic bulk consumers, split between the compressed
// and raw encodings), the bulk fetches full-day CSVs, another slice takes
// JSON, and a tail hits the legacy alias, the dates index, and per-AS
// series.
var routeMix = []struct {
	route string
	cum   float64
}{
	{RouteLive, 0.04},
	{RouteReportBinz, 0.15},
	{RouteReportBin, 0.30},
	{RouteReportCSV, 0.56},
	{RouteReportJSON, 0.75},
	{RouteLegacyCSV, 0.85},
	{RouteDates, 0.95},
	{RouteSeries, 1.00},
}

// Request is one planned hit: the path to fetch and how to fetch it.
type Request struct {
	Route       string // one of the Route* kinds
	Path        string // URL path + query, relative to the base URL
	Gzip        bool   // send Accept-Encoding: gzip
	Conditional bool   // replay the last seen ETag as If-None-Match
}

// Model generates the request stream. It is NOT safe for concurrent use;
// the runner gives each worker its own Model derived from the base seed
// so the stream is deterministic per (seed, worker) regardless of
// scheduling.
type Model struct {
	rng      *rand.Rand
	zipf     *rand.Zipf
	datasets []string
	first    dates.Date
	days     int // inclusive day count of [first, last]

	hotHalfLife   float64
	gzipFraction  float64
	condFraction  float64
	seriesPaths   []string
	liveCountries []string
}

// ModelConfig parameterizes the access model.
type ModelConfig struct {
	Datasets    []string   // popularity order: Datasets[0] is the hottest
	First, Last dates.Date // serving window
	ZipfS       float64    // Zipf exponent over dataset ranks (>1; default 1.2)
	// HotDayHalfLife is the recency bias in days: the probability of
	// requesting a day k days before Last halves every HotDayHalfLife
	// days. <= 0 disables the bias (uniform days).
	HotDayHalfLife float64
	GzipFraction   float64  // fraction of requests offering gzip
	CondFraction   float64  // fraction of repeat requests sent conditionally
	SeriesPaths    []string // concrete series paths; empty disables RouteSeries
	// LiveCountries are the country codes the live-poll share cycles
	// through; empty disables RouteLive (its share folds into report
	// CSVs, like SeriesPaths).
	LiveCountries []string
}

// NewModel builds a deterministic request model for one worker stream.
func NewModel(seed uint64, cfg ModelConfig) (*Model, error) {
	if len(cfg.Datasets) == 0 {
		return nil, fmt.Errorf("loadgen: no datasets")
	}
	days := cfg.Last.DayNumber() - cfg.First.DayNumber() + 1
	if days < 1 {
		return nil, fmt.Errorf("loadgen: empty date window %s..%s", cfg.First, cfg.Last)
	}
	s := cfg.ZipfS
	if s <= 1 {
		s = 1.2
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	return &Model{
		rng:          rng,
		zipf:         rand.NewZipf(rng, s, 1, uint64(len(cfg.Datasets)-1)),
		datasets:     cfg.Datasets,
		first:        cfg.First,
		days:         days,
		hotHalfLife:   cfg.HotDayHalfLife,
		gzipFraction:  cfg.GzipFraction,
		condFraction:  cfg.CondFraction,
		seriesPaths:   cfg.SeriesPaths,
		liveCountries: cfg.LiveCountries,
	}, nil
}

// Next plans the next request in this worker's stream.
func (m *Model) Next() Request {
	route := m.pickRoute()
	req := Request{
		Route:       route,
		Gzip:        m.rng.Float64() < m.gzipFraction,
		Conditional: m.rng.Float64() < m.condFraction,
	}
	ds := m.datasets[m.zipf.Uint64()]
	switch route {
	case RouteReportBinz:
		req.Path = "/v1/" + ds + "/reports/" + m.pickDay().String() + ".binz"
	case RouteReportBin:
		req.Path = "/v1/" + ds + "/reports/" + m.pickDay().String() + ".bin"
	case RouteReportCSV:
		req.Path = "/v1/" + ds + "/reports/" + m.pickDay().String() + ".csv"
	case RouteReportJSON:
		req.Path = "/v1/" + ds + "/reports/" + m.pickDay().String()
	case RouteLegacyCSV:
		req.Path = "/v1/reports/" + m.pickDay().String() + ".csv"
	case RouteDates:
		req.Path = "/v1/" + ds + "/dates"
	case RouteSeries:
		req.Path = m.seriesPaths[m.rng.Intn(len(m.seriesPaths))]
	case RouteLive:
		req.Path = "/v1/live/" + m.liveCountries[m.rng.Intn(len(m.liveCountries))]
	}
	return req
}

// pickRoute samples the route mix, degrading series traffic to report
// CSVs when no series paths were provided, and live traffic likewise
// when no live countries were configured.
func (m *Model) pickRoute() string {
	u := m.rng.Float64()
	for _, e := range routeMix {
		if u <= e.cum {
			if e.route == RouteSeries && len(m.seriesPaths) == 0 {
				return RouteReportCSV
			}
			if e.route == RouteLive && len(m.liveCountries) == 0 {
				return RouteReportCSV
			}
			return e.route
		}
	}
	return RouteReportCSV
}

// pickDay samples a day from the serving window with geometric recency
// bias: offset-from-last is exponential with the configured half-life,
// resampled (or clamped on a narrow window) into range.
func (m *Model) pickDay() dates.Date {
	last := m.first.AddDays(m.days - 1)
	if m.hotHalfLife <= 0 {
		return m.first.AddDays(m.rng.Intn(m.days))
	}
	// Exponential with rate ln2/halfLife has P(offset >= k) = 2^(-k/hl).
	offset := int(m.rng.ExpFloat64() * m.hotHalfLife / math.Ln2)
	if offset >= m.days {
		offset = m.days - 1 // clamp: narrow windows keep the hottest day hot
	}
	return last.AddDays(-offset)
}
