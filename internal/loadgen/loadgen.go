package loadgen

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dates"
	"repro/internal/obsv"
	"repro/internal/source/binfmt"
	"repro/internal/source/framez"
)

// Mode selects the loop discipline.
type Mode string

const (
	// Closed: Concurrency clients, each issuing its next request only
	// after the previous response completes. Measures the server at a
	// fixed client population; throughput self-limits to what the server
	// sustains.
	Closed Mode = "closed"
	// Open: requests are dispatched on a fixed schedule (Rate per
	// second) regardless of response times. Latency is measured from the
	// intended dispatch instant, so server-side queueing shows up as
	// client-visible latency instead of being absorbed silently.
	Open Mode = "open"
)

// Config parameterizes one load run.
type Config struct {
	BaseURL string
	Model   ModelConfig
	Seed    uint64

	Mode        Mode
	Concurrency int           // worker count (both modes)
	Requests    int           // total request budget; 0 = unlimited (needs Duration)
	Duration    time.Duration // wall-clock budget; 0 = unlimited (needs Requests)
	Rate        float64       // open loop: intended requests/second

	// HerdEvery triggers a thundering herd after every N regular
	// dispatches: HerdSize goroutines barrier-released at one cache-cold
	// day (stepped from the window's first day so each herd is cold).
	// 0 disables herds.
	HerdEvery int
	HerdSize  int

	// VerifyBodies hashes every 200 body and fails any path+encoding
	// whose bytes ever differ between requests — the immutability
	// contract checked under load.
	VerifyBodies bool

	Metrics *obsv.Registry // optional: per-route latency histograms
	Client  *http.Client   // optional: defaults to a fresh pooled client
	Log     *log.Logger    // optional progress/error log
}

// RouteStats is one route kind's ledger for a run.
//
// Requests counts every *intended* request of the route, including
// dispatches shed at a full queue: the coordinated-omission rule says a
// request the schedule wanted but the system couldn't absorb belongs in
// the denominator, with a latency sample measured from its intended
// start — hiding it would make an overloaded run look faster. Shed
// breaks out how many of those were shed; sheds are never errors.
type RouteStats struct {
	Route       string  `json:"route"`
	Requests    int64   `json:"requests"`
	Shed        int64   `json:"shed,omitempty"` // open loop: dispatches dropped at a full queue
	Errors      int64   `json:"errors"`         // transport failures + 5xx/4xx statuses
	NotModified int64   `json:"not_modified"`
	Gzipped     int64   `json:"gzipped"`
	Mismatches  int64   `json:"mismatches"` // body-hash violations (VerifyBodies)
	BytesRead   int64   `json:"bytes_read"`
	P50         float64 `json:"p50_seconds"`
	P95         float64 `json:"p95_seconds"`
	P99         float64 `json:"p99_seconds"`
	P999        float64 `json:"p999_seconds"`
	ErrorRate   float64 `json:"error_rate"`
}

// RunResult is the outcome of one Run.
type RunResult struct {
	Mode        Mode         `json:"mode"`
	Concurrency int          `json:"concurrency"`
	RateHz      float64      `json:"rate_hz,omitempty"`
	WallNS      int64        `json:"wall_ns"`
	Requests    int64        `json:"requests"`   // recorded requests: completions plus open-loop sheds (the intended-start denominator)
	Dispatched  int64        `json:"dispatched"` // schedule ticks consumed; open-loop dispatches still in flight or queued at the deadline are dispatched but not completed
	Errors      int64        `json:"errors"`
	Dropped     int64        `json:"dropped"` // open loop: dispatches shed at a full queue (== sum of per-route Shed)
	Herds       int64        `json:"herds"`
	Throughput  float64      `json:"throughput_rps"`
	Routes      []RouteStats `json:"routes"`
}

// recorder accumulates one route's samples. Exact latencies are kept so
// the report's tail quantiles are true order statistics, not bucket
// interpolations; a load run is bounded, so the memory is too.
type recorder struct {
	mu        sync.Mutex
	latencies []float64
	stats     RouteStats
	hist      *obsv.Histogram
	errsCtr   *obsv.Counter
}

func (rec *recorder) observe(lat float64, status int, gz bool, n int64, failed bool) {
	if rec.hist != nil {
		rec.hist.Observe(lat)
	}
	if failed && rec.errsCtr != nil {
		rec.errsCtr.Inc()
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.latencies = append(rec.latencies, lat)
	rec.stats.Requests++
	rec.stats.BytesRead += n
	if failed {
		rec.stats.Errors++
	}
	if status == http.StatusNotModified {
		rec.stats.NotModified++
	}
	if gz {
		rec.stats.Gzipped++
	}
}

// observeShed records one shed dispatch: a request the schedule
// intended that never reached a worker. It joins the request count and
// the latency population (its sample runs from the intended start to
// the shed decision) but is not an error — the server never saw it.
func (rec *recorder) observeShed(lat float64) {
	if rec.hist != nil {
		rec.hist.Observe(lat)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.latencies = append(rec.latencies, lat)
	rec.stats.Requests++
	rec.stats.Shed++
}

func (rec *recorder) finalize() RouteStats {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	s := rec.stats
	sort.Float64s(rec.latencies)
	s.P50 = sampleQuantile(rec.latencies, 0.50)
	s.P95 = sampleQuantile(rec.latencies, 0.95)
	s.P99 = sampleQuantile(rec.latencies, 0.99)
	s.P999 = sampleQuantile(rec.latencies, 0.999)
	if s.Requests > 0 {
		s.ErrorRate = float64(s.Errors) / float64(s.Requests)
	}
	return s
}

// sampleQuantile returns the q-th quantile of sorted samples by linear
// interpolation between order statistics, or 0 for an empty slice.
func sampleQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i] + (sorted[i+1]-sorted[i])*frac
}

// runner is the shared state of one Run.
type runner struct {
	cfg    Config
	client *http.Client

	recs  map[string]*recorder
	recMu sync.Mutex

	etags  sync.Map // path+"|"+variant -> ETag of the last 200
	hashes sync.Map // path+"|"+variant -> body hash of the first 200

	dispatched atomic.Int64 // regular requests handed to workers
	errors     atomic.Int64
	dropped    atomic.Int64
	herds      atomic.Int64
	herdDay    atomic.Int64 // next cold-day offset from the window start
}

// Run executes one load run and returns its ledger. The context bounds
// the run in addition to Requests/Duration.
func Run(ctx context.Context, cfg Config) (*RunResult, error) {
	if cfg.Concurrency < 1 {
		return nil, fmt.Errorf("loadgen: concurrency %d", cfg.Concurrency)
	}
	if cfg.Requests <= 0 && cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: need a Requests or Duration budget")
	}
	if cfg.Mode == "" {
		cfg.Mode = Closed
	}
	if cfg.Mode == Open && cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: open loop needs Rate > 0")
	}
	if _, err := NewModel(cfg.Seed, cfg.Model); err != nil {
		return nil, err
	}

	r := &runner{cfg: cfg, client: cfg.Client, recs: map[string]*recorder{}}
	if r.client == nil {
		r.client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: cfg.Concurrency + max(cfg.HerdSize, 0),
		}}
	}

	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	t0 := time.Now()
	switch cfg.Mode {
	case Closed:
		r.runClosed(ctx)
	case Open:
		r.runOpen(ctx)
	default:
		return nil, fmt.Errorf("loadgen: unknown mode %q", cfg.Mode)
	}
	wall := time.Since(t0)

	res := &RunResult{
		Mode:        cfg.Mode,
		Concurrency: cfg.Concurrency,
		RateHz:      cfg.Rate,
		WallNS:      wall.Nanoseconds(),
		Dispatched:  min(r.dispatched.Load(), int64(max(cfg.Requests, 0))),
		Errors:      r.errors.Load(),
		Dropped:     r.dropped.Load(),
		Herds:       r.herds.Load(),
	}
	if cfg.Requests <= 0 {
		res.Dispatched = r.dispatched.Load()
	}
	r.recMu.Lock()
	routes := make([]string, 0, len(r.recs))
	for route := range r.recs {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	for _, route := range routes {
		s := r.recs[route].finalize()
		res.Requests += s.Requests
		res.Routes = append(res.Routes, s)
	}
	r.recMu.Unlock()
	if wall > 0 {
		// Throughput counts only requests the server actually answered;
		// sheds are in Requests for the latency/error denominators but
		// never produced server work.
		res.Throughput = float64(res.Requests-res.Dropped) / wall.Seconds()
	}
	return res, nil
}

// runClosed drains a shared request budget with Concurrency synchronous
// workers, each with its own deterministic model stream.
func (r *runner) runClosed(ctx context.Context) {
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			model, _ := NewModel(r.cfg.Seed+uint64(w)*7919, r.cfg.Model)
			for ctx.Err() == nil {
				n := r.dispatched.Add(1)
				if r.cfg.Requests > 0 && n > int64(r.cfg.Requests) {
					return
				}
				r.do(ctx, model.Next(), time.Now())
				r.maybeHerd(ctx, n)
			}
		}()
	}
	wg.Wait()
}

// runOpen dispatches intended start times on a fixed schedule into a
// bounded queue; a worker pool executes them. Latency for each request
// runs from its *intended* start, so queue wait is charged to the
// server. A full queue sheds the dispatch (counted, never blocking the
// schedule — blocking would re-introduce coordinated omission).
func (r *runner) runOpen(ctx context.Context) {
	type tick struct {
		req      Request
		intended time.Time
	}
	queue := make(chan tick, r.cfg.Concurrency*4)
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range queue {
				r.do(ctx, tk.req, tk.intended)
			}
		}()
	}

	model, _ := NewModel(r.cfg.Seed, r.cfg.Model)
	interval := time.Duration(float64(time.Second) / r.cfg.Rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	// Intended start times come from the schedule itself (t0 + n·interval),
	// NOT from the ticker's delivery timestamps: deliveries slip whenever
	// the dispatch loop stalls (a herd's barrier, a GC pause), and using
	// them as the measurement origin would silently forgive exactly the
	// delay an open-loop generator exists to expose.
	t0 := time.Now()
dispatch:
	for {
		select {
		case <-ctx.Done():
			break dispatch
		case <-ticker.C:
			n := r.dispatched.Add(1)
			if r.cfg.Requests > 0 && n > int64(r.cfg.Requests) {
				break dispatch
			}
			plan := model.Next()
			intended := t0.Add(time.Duration(n) * interval)
			select {
			case queue <- tick{plan, intended}:
			default:
				// Shed, and account for it where it belongs: in the
				// intended-start ledger of the route it would have hit.
				// A shed is not an error — the server never saw it — and
				// it must never be double-counted as one.
				r.dropped.Add(1)
				r.rec(plan.Route).observeShed(time.Since(intended).Seconds())
			}
			r.maybeHerd(ctx, n)
		}
	}
	close(queue)
	wg.Wait()
}

// maybeHerd barrier-releases HerdSize concurrent fetches of one
// cache-cold day after every HerdEvery regular dispatches. Cold days
// step forward from the window start — the opposite end from the
// recency-biased hot set — so each herd hits an unpopulated cache entry
// and the full generation cost lands on every herd at once.
func (r *runner) maybeHerd(ctx context.Context, n int64) {
	if r.cfg.HerdEvery <= 0 || r.cfg.HerdSize <= 0 || n%int64(r.cfg.HerdEvery) != 0 {
		return
	}
	days := r.cfg.Model.Last.DayNumber() - r.cfg.Model.First.DayNumber() + 1
	offset := int(r.herdDay.Add(1)-1) % days
	day := r.cfg.Model.First.AddDays(offset)
	ds := r.cfg.Model.Datasets[int(r.herds.Add(1)-1)%len(r.cfg.Model.Datasets)]
	req := Request{Route: RouteHerd, Path: "/v1/" + ds + "/reports/" + day.String() + ".csv"}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < r.cfg.HerdSize; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			r.do(ctx, req, time.Now())
		}()
	}
	close(start) // release the herd in one instant
	wg.Wait()
}

// rec returns the route's recorder, creating it on first use.
func (r *runner) rec(route string) *recorder {
	r.recMu.Lock()
	defer r.recMu.Unlock()
	rec, ok := r.recs[route]
	if !ok {
		rec = &recorder{stats: RouteStats{Route: route}}
		if r.cfg.Metrics != nil {
			rec.hist = r.cfg.Metrics.Histogram(
				obsv.Label("loadgen_request_seconds", "route", route), obsv.LoadBuckets)
			rec.errsCtr = r.cfg.Metrics.Counter(
				obsv.Label("loadgen_request_errors_total", "route", route))
		}
		r.recs[route] = rec
	}
	return rec
}

// do executes one planned request and records it. Latency runs from
// intended (the dispatch schedule's timestamp in the open loop; now in
// the closed loop) through the last body byte.
func (r *runner) do(ctx context.Context, plan Request, intended time.Time) {
	variant := "identity"
	if plan.Gzip {
		variant = "gzip"
	}
	key := plan.Path + "|" + variant

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+plan.Path, nil)
	if err != nil {
		r.record(plan.Route, time.Since(intended), 0, plan.Gzip, 0, true)
		return
	}
	// Explicit Accept-Encoding both ways: "identity" keeps the transport
	// from transparently negotiating gzip behind the measurement's back.
	if plan.Gzip {
		req.Header.Set("Accept-Encoding", "gzip")
	} else {
		req.Header.Set("Accept-Encoding", "identity")
	}
	sentETag := ""
	if plan.Conditional {
		if etag, ok := r.etags.Load(key); ok {
			sentETag = etag.(string)
			req.Header.Set("If-None-Match", sentETag)
		}
	}

	resp, err := r.client.Do(req)
	if err != nil {
		// Context-cancelled requests at the end of a Duration run are
		// shutdown noise, not server errors.
		if ctx.Err() == nil {
			r.record(plan.Route, time.Since(intended), 0, plan.Gzip, 0, true)
		}
		return
	}
	body, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	lat := time.Since(intended)
	if readErr != nil && ctx.Err() != nil {
		return // deadline hit mid-read: shutdown noise, not a server error
	}

	failed := readErr != nil || resp.StatusCode >= 400
	isLive := plan.Route == RouteLive
	if isLive && resp.StatusCode == http.StatusServiceUnavailable && readErr == nil {
		// The live route 503s by contract until a stream is attached and
		// has observed data; a poller arriving before first data is the
		// normal cold-start case, not a server failure.
		failed = false
	}
	if resp.StatusCode == http.StatusOK && readErr == nil {
		if isLive && sentETag != "" && resp.Header.Get("ETag") == sentETag {
			// Revision-ETag contract: the snapshot promises equal tags mean
			// equal bytes, so a conditional request bearing the current tag
			// must get 304, never a 200 re-sending the same revision.
			failed = true
			rec := r.rec(plan.Route)
			rec.mu.Lock()
			rec.stats.Mismatches++
			rec.mu.Unlock()
			if r.cfg.Log != nil {
				r.cfg.Log.Printf("loadgen: live 200 with unchanged ETag %s (%s)", sentETag, plan.Path)
			}
		}
		if etag := resp.Header.Get("ETag"); etag != "" {
			r.etags.Store(key, etag)
		}
		// The live resource mutates as the stream drains, so it is exempt
		// from the immutable-body verification below; its integrity check
		// is the revision-ETag contract above.
		if r.cfg.VerifyBodies && !isLive {
			sum := sha256.Sum256(body)
			h := hex.EncodeToString(sum[:])
			if prev, loaded := r.hashes.LoadOrStore(key, h); loaded && prev.(string) != h {
				failed = true
				rec := r.rec(plan.Route)
				rec.mu.Lock()
				rec.stats.Mismatches++
				rec.mu.Unlock()
				if r.cfg.Log != nil {
					r.cfg.Log.Printf("loadgen: body mismatch %s (%s)", plan.Path, variant)
				}
			}
			// Binary identity bodies additionally carry a checksum and a
			// strict structure: decode them so corruption inside a stable
			// body (same bytes, bad frame) cannot hide behind the hash.
			// The compressed binary representation is verified on BOTH
			// variants — the server contract is that binz never gets a gzip
			// layer, so a gzip-offering request still receives the identity
			// artifact and the decode doubles as an end-to-end check of
			// that: a Content-Encoding: gzip body would fail the magic.
			var verify func([]byte) error
			switch {
			case plan.Route == RouteReportBin && !plan.Gzip:
				verify = func(b []byte) error { _, err := binfmt.Decode(b); return err }
			case plan.Route == RouteReportBinz:
				verify = func(b []byte) error { _, err := framez.Decode(b); return err }
			}
			if verify != nil {
				if err := verify(body); err != nil {
					failed = true
					rec := r.rec(plan.Route)
					rec.mu.Lock()
					rec.stats.Mismatches++
					rec.mu.Unlock()
					if r.cfg.Log != nil {
						r.cfg.Log.Printf("loadgen: undecodable binary body %s: %v", plan.Path, err)
					}
				}
			}
		}
	}
	if failed && r.cfg.Log != nil && ctx.Err() == nil {
		r.cfg.Log.Printf("loadgen: %s %s -> status=%d readErr=%v", plan.Route, plan.Path, resp.StatusCode, readErr)
	}
	r.record(plan.Route, lat, resp.StatusCode, plan.Gzip, int64(len(body)), failed)
}

func (r *runner) record(route string, lat time.Duration, status int, gz bool, n int64, failed bool) {
	if failed {
		r.errors.Add(1)
	}
	r.rec(route).observe(lat.Seconds(), status, gz, n, failed)
}

// Datasets is the popularity-ordered roster the cmd uses by default:
// apnic first (the paper's dataset and the hot path), then the
// comparison datasets.
var Datasets = []string{"apnic", "cdn", "itu", "mlab", "dnscount", "broadband", "ixp"}

// DefaultModel is the canonical access model for a serving window.
func DefaultModel(first, last dates.Date) ModelConfig {
	return ModelConfig{
		Datasets:       Datasets,
		First:          first,
		Last:           last,
		ZipfS:          1.2,
		HotDayHalfLife: 7,
		GzipFraction:   0.5,
		CondFraction:   0.3,
	}
}
