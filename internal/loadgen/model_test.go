package loadgen

import (
	"strings"
	"testing"

	"repro/internal/dates"
)

func testModelCfg() ModelConfig {
	return ModelConfig{
		Datasets:       []string{"apnic", "cdn", "itu"},
		First:          dates.New(2024, 1, 1),
		Last:           dates.New(2024, 12, 31),
		ZipfS:          1.3,
		HotDayHalfLife: 7,
		GzipFraction:   0.5,
		CondFraction:   0.3,
		SeriesPaths:    []string{"/v1/series/AS1?cc=FR&from=2024-06-01&to=2024-06-05"},
	}
}

// TestModelDeterministic: the same seed must replay the identical request
// stream — the property that makes load runs comparable across commits.
func TestModelDeterministic(t *testing.T) {
	a, err := NewModel(42, testModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewModel(42, testModelCfg())
	c, _ := NewModel(43, testModelCfg())
	var diverged bool
	for i := 0; i < 500; i++ {
		ra, rb, rc := a.Next(), b.Next(), c.Next()
		if ra != rb {
			t.Fatalf("request %d diverged under one seed: %+v vs %+v", i, ra, rb)
		}
		if ra != rc {
			diverged = true
		}
	}
	if !diverged {
		t.Error("seeds 42 and 43 produced identical 500-request streams")
	}
}

// TestModelShape draws a large sample and checks the distributional
// promises: every path is well-formed and in-window, rank-0 dominates
// the Zipf, recent days dominate the day picker, and the gzip/cond
// fractions land near their configuration.
func TestModelShape(t *testing.T) {
	cfg := testModelCfg()
	m, err := NewModel(7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 20000
	dsCount := map[string]int{}
	routeCount := map[string]int{}
	var gzip, cond, dayOffsetSum, daySamples int
	for i := 0; i < draws; i++ {
		req := m.Next()
		routeCount[req.Route]++
		if req.Gzip {
			gzip++
		}
		if req.Conditional {
			cond++
		}
		switch req.Route {
		case RouteReportBinz, RouteReportBin, RouteReportCSV, RouteReportJSON, RouteLegacyCSV:
			rest := strings.TrimPrefix(req.Path, "/v1/")
			if req.Route != RouteLegacyCSV {
				ds, r, ok := strings.Cut(rest, "/")
				if !ok {
					t.Fatalf("malformed path %q", req.Path)
				}
				dsCount[ds]++
				rest = r
			}
			day := strings.TrimPrefix(rest, "reports/")
			day = strings.TrimSuffix(day, ".csv")
			day = strings.TrimSuffix(day, ".binz")
			day = strings.TrimSuffix(day, ".bin")
			d, err := dates.Parse(day)
			if err != nil {
				t.Fatalf("path %q: %v", req.Path, err)
			}
			if d.DayNumber() < cfg.First.DayNumber() || d.DayNumber() > cfg.Last.DayNumber() {
				t.Fatalf("day %s outside window", d)
			}
			dayOffsetSum += cfg.Last.DayNumber() - d.DayNumber()
			daySamples++
		case RouteDates:
			dsCount[strings.TrimSuffix(strings.TrimPrefix(req.Path, "/v1/"), "/dates")]++
		case RouteSeries:
			if req.Path != cfg.SeriesPaths[0] {
				t.Fatalf("series path %q", req.Path)
			}
		default:
			t.Fatalf("unknown route %q", req.Route)
		}
	}
	if dsCount["apnic"] <= dsCount["cdn"] || dsCount["cdn"] <= dsCount["itu"] {
		t.Errorf("Zipf rank order violated: %v", dsCount)
	}
	if routeCount[RouteSeries] == 0 || routeCount[RouteDates] == 0 {
		t.Errorf("route mix missing tails: %v", routeCount)
	}
	// The binary plane is a first-class slice of the mix (cum 0.28 split
	// 0.12 binz / 0.16 bin), not a rounding artifact: expect both
	// encodings near their shares.
	if f := float64(routeCount[RouteReportBinz]) / draws; f < 0.08 || f > 0.16 {
		t.Errorf("binz route fraction %.3f, want ~0.12", f)
	}
	if f := float64(routeCount[RouteReportBin]) / draws; f < 0.12 || f > 0.20 {
		t.Errorf("bin route fraction %.3f, want ~0.16", f)
	}
	// Mean exponential offset is halfLife/ln2 ≈ 1.44*hl ≈ 10.1 days; the
	// clamp only pulls it down. Anything near uniform (≈183) is a bug.
	if mean := float64(dayOffsetSum) / float64(daySamples); mean > 3*cfg.HotDayHalfLife {
		t.Errorf("mean day offset %.1f days; recency bias lost", mean)
	}
	if f := float64(gzip) / draws; f < 0.45 || f > 0.55 {
		t.Errorf("gzip fraction %.3f, want ~0.5", f)
	}
	if f := float64(cond) / draws; f < 0.25 || f > 0.35 {
		t.Errorf("conditional fraction %.3f, want ~0.3", f)
	}
}

// TestModelNoSeriesPaths: with no series paths the series share of the
// mix degrades to report CSVs instead of emitting empty paths.
func TestModelNoSeriesPaths(t *testing.T) {
	cfg := testModelCfg()
	cfg.SeriesPaths = nil
	m, err := NewModel(7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		req := m.Next()
		if req.Route == RouteSeries || req.Path == "" {
			t.Fatalf("draw %d: %+v", i, req)
		}
	}
}

// TestModelValidation: bad configs fail construction instead of
// producing degenerate streams.
func TestModelValidation(t *testing.T) {
	cfg := testModelCfg()
	cfg.Datasets = nil
	if _, err := NewModel(1, cfg); err == nil {
		t.Error("no datasets must fail")
	}
	cfg = testModelCfg()
	cfg.First, cfg.Last = cfg.Last, cfg.First
	if _, err := NewModel(1, cfg); err == nil {
		t.Error("inverted window must fail")
	}
}

// TestModelNarrowWindow: a one-day window keeps every draw on that day
// (the exponential clamp) rather than panicking or escaping the range.
func TestModelNarrowWindow(t *testing.T) {
	cfg := testModelCfg()
	cfg.First = dates.New(2024, 6, 1)
	cfg.Last = cfg.First
	m, err := NewModel(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		req := m.Next()
		if strings.Contains(req.Path, "reports/") && !strings.Contains(req.Path, "2024-06-01") {
			t.Fatalf("draw escaped one-day window: %q", req.Path)
		}
	}
}
