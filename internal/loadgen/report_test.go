package loadgen

import (
	"path/filepath"
	"strings"
	"testing"
)

func mkReport(gen int64, mode Mode, p99, errRate float64) *Report {
	const requests = 1000
	return &Report{
		GeneratedUnix: gen,
		Runs: []*RunResult{{
			Mode:     mode,
			Requests: requests,
			Errors:   int64(errRate * requests),
			Routes:   []RouteStats{{Route: RouteReportCSV, Requests: requests, P99: p99}},
		}},
	}
}

func TestFoldHistoryCapsAndOrders(t *testing.T) {
	rep := mkReport(100, Closed, 0.01, 0)
	base := mkReport(99, Closed, 0.02, 0)
	for i := int64(0); i < historyCap+10; i++ {
		base.History = append(base.History, HistoryEntry{GeneratedUnix: i})
	}
	rep.FoldHistory(base)
	if len(rep.History) != historyCap {
		t.Fatalf("history len %d, want %d", len(rep.History), historyCap)
	}
	// Most recent entries survive: the baseline's own headline is last.
	last := rep.History[len(rep.History)-1]
	if last.GeneratedUnix != 99 || last.WorstP99 != 0.02 {
		t.Errorf("last history entry %+v, want the baseline headline", last)
	}
	rep.FoldHistory(nil) // nil baseline is a no-op
	if len(rep.History) != historyCap {
		t.Errorf("nil fold changed history to %d entries", len(rep.History))
	}
}

func TestGatePolicies(t *testing.T) {
	cases := []struct {
		name    string
		rep     *Report
		base    *Report
		pct     float64
		maxErr  float64
		wantErr string
	}{
		{"clean run, no baseline", mkReport(2, Closed, 0.010, 0), nil, 50, 0.01, ""},
		{"within p99 budget", mkReport(2, Closed, 0.014, 0), mkReport(1, Closed, 0.010, 0), 50, 0.01, ""},
		{"p99 regression", mkReport(2, Closed, 0.016, 0), mkReport(1, Closed, 0.010, 0), 50, 0.01, "p99 regression"},
		{"error budget blown", mkReport(2, Closed, 0.010, 0.05), nil, 50, 0.01, "error rate"},
		{"zero errors allowed", mkReport(2, Closed, 0.010, 0.001), nil, 50, 0, "error rate"},
		{"error gate disabled", mkReport(2, Closed, 0.010, 0.5), nil, 50, -1, ""},
		{"mode mismatch skips latency gate", mkReport(2, Open, 9.0, 0), mkReport(1, Closed, 0.010, 0), 50, 0.01, ""},
		{"pct 0 disables latency gate", mkReport(2, Closed, 9.0, 0), mkReport(1, Closed, 0.010, 0), 0, 0.01, ""},
		{"empty report", &Report{}, nil, 50, 0.01, "no runs"},
	}
	for _, tc := range cases {
		err := Gate(tc.rep, tc.base, tc.pct, tc.maxErr)
		if tc.wantErr == "" && err != nil {
			t.Errorf("%s: unexpected gate failure: %v", tc.name, err)
		}
		if tc.wantErr != "" && (err == nil || !strings.Contains(err.Error(), tc.wantErr)) {
			t.Errorf("%s: gate = %v, want %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestReportRoundTripAndLoadMissing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_load.json")
	if got := LoadReport(path); got != nil {
		t.Fatalf("missing file loaded as %+v", got)
	}
	rep := mkReport(42, Open, 0.25, 0.001)
	rep.Seed = 7
	rep.History = []HistoryEntry{{GeneratedUnix: 41}}
	if err := rep.WriteReport(path); err != nil {
		t.Fatal(err)
	}
	got := LoadReport(path)
	if got == nil || got.Seed != 7 || len(got.Runs) != 1 || len(got.History) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Runs[0].Mode != Open || got.Runs[0].Routes[0].P99 != 0.25 {
		t.Fatalf("run fields lost: %+v", got.Runs[0])
	}
}

func TestSampleQuantile(t *testing.T) {
	if got := sampleQuantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 10}, {0.5, 5.5}, {0.9, 9.1},
	}
	for _, tc := range cases {
		if got := sampleQuantile(sorted, tc.q); got < tc.want-1e-9 || got > tc.want+1e-9 {
			t.Errorf("quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestWorstP99AndErrorRate(t *testing.T) {
	run := &RunResult{
		Requests: 200,
		Errors:   3,
		Routes: []RouteStats{
			{Route: "a", P99: 0.1},
			{Route: "b", P99: 0.7},
			{Route: "c", P99: 0.3},
		},
	}
	if got := run.WorstP99(); got != 0.7 {
		t.Errorf("WorstP99 = %v", got)
	}
	if got := run.ErrorRate(); got != 0.015 {
		t.Errorf("ErrorRate = %v", got)
	}
	if got := (&RunResult{}).ErrorRate(); got != 0 {
		t.Errorf("empty ErrorRate = %v", got)
	}
}
