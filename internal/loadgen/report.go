package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
)

// Report is the whole BENCH_load.json document: the current run's
// per-route ledgers plus a rolling history of prior headline numbers, so
// the artifact records a latency trajectory across commits the same way
// BENCH_sweep.json records compute cost.
type Report struct {
	GeneratedUnix int64        `json:"generated_unix"`
	GoVersion     string       `json:"go_version"`
	NumCPU        int          `json:"num_cpu"`
	GOMAXPROCS    int          `json:"gomaxprocs"`
	Seed          uint64       `json:"seed"`
	Runs          []*RunResult `json:"runs"`

	// History holds prior reports' headline numbers, oldest first,
	// capped at historyCap entries.
	History []HistoryEntry `json:"history,omitempty"`
}

// HistoryEntry compresses one prior report's first run into the numbers
// worth trending: throughput, the worst per-route p99, and the error
// rate.
type HistoryEntry struct {
	GeneratedUnix int64   `json:"generated_unix"`
	Mode          Mode    `json:"mode"`
	Requests      int64   `json:"requests"`
	Throughput    float64 `json:"throughput_rps"`
	WorstP99      float64 `json:"worst_p99_seconds"`
	ErrorRate     float64 `json:"error_rate"`
}

// historyCap bounds the rolling trajectory carried inside the report.
const historyCap = 50

// WorstP99 returns the largest per-route p99 in the run, the headline
// the regression gate trends. Herd routes are deliberately included:
// cold-day bursts are exactly the latencies worth guarding.
func (r *RunResult) WorstP99() float64 {
	worst := 0.0
	for _, rs := range r.Routes {
		if rs.P99 > worst {
			worst = rs.P99
		}
	}
	return worst
}

// ErrorRate returns the run's overall request error fraction.
func (r *RunResult) ErrorRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Requests)
}

// headline compresses a run for the history trail.
func (rep *Report) headline() (HistoryEntry, bool) {
	if len(rep.Runs) == 0 {
		return HistoryEntry{}, false
	}
	run := rep.Runs[0]
	return HistoryEntry{
		GeneratedUnix: rep.GeneratedUnix,
		Mode:          run.Mode,
		Requests:      run.Requests,
		Throughput:    run.Throughput,
		WorstP99:      run.WorstP99(),
		ErrorRate:     run.ErrorRate(),
	}, true
}

// FoldHistory carries the baseline's trajectory into this report: the
// baseline's own history, plus the baseline's headline appended, capped
// at historyCap (most recent kept).
func (rep *Report) FoldHistory(base *Report) {
	if base == nil {
		return
	}
	rep.History = append(rep.History, base.History...)
	if h, ok := base.headline(); ok {
		rep.History = append(rep.History, h)
	}
	if n := len(rep.History); n > historyCap {
		rep.History = rep.History[n-historyCap:]
	}
}

// LoadReport reads a prior BENCH_load.json, or nil when the file is
// missing or unparseable (first run, or a format change).
func LoadReport(path string) *Report {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil
	}
	return &r
}

// WriteReport writes the report as indented JSON.
func (rep *Report) WriteReport(path string) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Gate applies the CI regression policy and returns the first violation:
//
//   - the current report's first run must keep its error rate at or
//     below maxErrorRate (<0 disables), and
//   - its worst per-route p99 must not exceed the baseline's same-mode
//     headline by more than maxRegressPct percent (<=0, or no usable
//     baseline, disables — mirroring benchsweep's -max-regress-pct).
//
// Latency gates on shared CI runners need generous percentages; the gate
// exists to catch step-function regressions (a lost cache, an accidental
// O(n^2)), not 10% noise.
func Gate(rep, base *Report, maxRegressPct, maxErrorRate float64) error {
	if len(rep.Runs) == 0 {
		return fmt.Errorf("loadgen: report has no runs to gate")
	}
	run := rep.Runs[0]
	if maxErrorRate >= 0 {
		if er := run.ErrorRate(); er > maxErrorRate {
			return fmt.Errorf("error rate %.4f exceeds budget %.4f (%d/%d requests failed)",
				er, maxErrorRate, run.Errors, run.Requests)
		}
	}
	if maxRegressPct <= 0 || base == nil {
		return nil
	}
	baseHead, ok := base.headline()
	if !ok || baseHead.Mode != run.Mode || baseHead.WorstP99 <= 0 {
		return nil // no comparable baseline: trend starts here
	}
	budget := baseHead.WorstP99 * (1 + maxRegressPct/100)
	if got := run.WorstP99(); got > budget {
		return fmt.Errorf("p99 regression: %.4fs vs baseline %.4fs (+%.0f%% budget)",
			got, baseHead.WorstP99, maxRegressPct)
	}
	return nil
}
