package ixp

import (
	"fmt"
	"sort"

	"repro/internal/dates"
	"repro/internal/obsv"
	"repro/internal/orgs"
	"repro/internal/source"
)

// DatasetName is the registry name of the IXP registry-scrape dataset.
const DatasetName = "ixp"

// Frame converts the scrape to the uniform columnar form: the union of
// publicly-registered and PNI pairs sorted by country then org, with a
// Capacity of 0 encoding "not in the public registry" (real stored
// capacities are always positive, so the encoding is lossless —
// SnapshotFromFrame reconstructs an equal snapshot).
func (s *Snapshot) Frame() *source.Frame {
	set := make(map[orgs.CountryOrg]struct{}, len(s.PNI))
	for pair := range s.Capacities {
		set[pair] = struct{}{}
	}
	for pair := range s.PNI {
		set[pair] = struct{}{}
	}
	pairs := make([]orgs.CountryOrg, 0, len(set))
	for pair := range set {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Country != pairs[j].Country {
			return pairs[i].Country < pairs[j].Country
		}
		return pairs[i].Org < pairs[j].Org
	})
	f := source.NewFrame(DatasetName, s.Date)
	cc := f.AddStrings("CC")
	org := f.AddStrings("Org")
	cap := f.AddFloats("Capacity")
	pni := f.AddFloats("PNI")
	for _, pair := range pairs {
		cc.Strs = append(cc.Strs, pair.Country)
		org.Strs = append(org.Strs, pair.Org)
		cap.Floats = append(cap.Floats, s.Capacities[pair])
		pni.Floats = append(pni.Floats, s.PNI[pair])
	}
	return f
}

// SnapshotFromFrame reconstructs the native scrape from its frame form.
func SnapshotFromFrame(f *source.Frame) (*Snapshot, error) {
	cc, org := f.Col("CC"), f.Col("Org")
	cap, pni := f.Col("Capacity"), f.Col("PNI")
	if cc == nil || org == nil || cap == nil || pni == nil {
		return nil, fmt.Errorf("ixp: frame is missing snapshot columns")
	}
	s := &Snapshot{
		Date:       f.Date,
		Capacities: make(map[orgs.CountryOrg]float64, f.Rows()),
		PNI:        make(map[orgs.CountryOrg]float64, f.Rows()),
	}
	for i := 0; i < f.Rows(); i++ {
		pair := orgs.CountryOrg{Country: cc.Strs[i], Org: org.Strs[i]}
		if cap.Floats[i] > 0 {
			s.Capacities[pair] = cap.Floats[i]
		}
		if pni.Floats[i] > 0 {
			s.PNI[pair] = pni.Floats[i]
		}
	}
	return s, nil
}

// Source adapts the generator to the uniform source interface, caching
// the native scrapes day-keyed.
type Source struct {
	gen  *Generator
	days *source.Days[*Snapshot]
}

// NewSource wraps a generator as a registrable source.
func NewSource(gen *Generator, metrics *obsv.Registry, cacheDays int) *Source {
	return &Source{
		gen:  gen,
		days: source.NewDays[*Snapshot](metrics, "source", DatasetName, cacheDays),
	}
}

// Generator returns the wrapped generator.
func (s *Source) Generator() *Generator { return s.gen }

// Name implements source.Source.
func (s *Source) Name() string { return DatasetName }

// Window implements source.Source.
func (s *Source) Window() source.Window {
	return source.Window{First: source.SpanFirst, Last: source.SpanLast, Cadence: source.CadenceScrape}
}

// Snapshot returns the memoized native scrape for a day.
func (s *Source) Snapshot(d dates.Date) *Snapshot {
	return s.days.Get(d, s.gen.Generate)
}

// Generate implements source.Source.
func (s *Source) Generate(d dates.Date) *source.Frame {
	return s.Snapshot(d).Frame()
}

// CacheStats reports the native scrape cache's activity.
func (s *Source) CacheStats() source.CacheStats { return s.days.Stats() }
