// Package ixp simulates the IXP peering-capacity dataset (§3.6): per-AS
// port capacities aggregated across Internet exchange points, as reported
// in a PeeringDB-like public registry — plus the *hidden* Private Network
// Interconnect (PNI) capacities the paper can only study through the CDN
// (Appendix E).
//
// Modelled properties:
//
//   - Capacity tracks traffic demand with headroom, so it is a (noisy,
//     nonlinear) proxy for traffic volume.
//   - Public incompleteness: PNIs are invisible, many networks are not in
//     the registry at all, and registry coverage is thin where IXPs play
//     a minor role (Africa).
//   - Port quantization: registered capacity is a sum of standard port
//     sizes (1G / 10G / 100G / 400G).
//   - The IXP↔PNI relationship is real but loose (the paper measures
//     R² ≈ 0.47), because large eyeballs shift traffic to PNIs.
package ixp

import (
	"sort"

	"repro/internal/dates"
	"repro/internal/orgs"
	"repro/internal/rng"
	"repro/internal/world"
)

// Port sizes in bit/s.
const (
	Gbps    = 1e9
	port1G  = 1 * Gbps
	port10G = 10 * Gbps
	port100 = 100 * Gbps
	port400 = 400 * Gbps
)

// chanCap is the derivation channel key for the persistent per-org
// capacity/registration noise stream.
const chanCap uint64 = 1

// Generator produces IXP capacity snapshots over a world.
type Generator struct {
	W    *world.World
	root *rng.Stream
}

// New returns a generator.
func New(w *world.World, seed uint64) *Generator {
	return &Generator{W: w, root: rng.New(seed).Split("ixp")}
}

// Snapshot is one registry scrape.
type Snapshot struct {
	Date dates.Date

	// Capacities is the public per-(country, org) total IXP port
	// capacity in bit/s — what PeeringDB shows.
	Capacities map[orgs.CountryOrg]float64

	// PNI is the hidden private-interconnect capacity in bit/s; the
	// paper could only observe it through the CDN's own interconnects.
	PNI map[orgs.CountryOrg]float64
}

// registryCoverage is the probability an org registers its IXP ports,
// by continent — thin in Africa, dense in Europe (§5.3's caveat).
func registryCoverage(cont string) float64 {
	switch cont {
	case "Europe":
		return 0.85
	case "North America", "Oceania":
		return 0.75
	case "Asia", "South America":
		return 0.65
	case "Africa":
		return 0.25
	default:
		return 0.5
	}
}

// Generate scrapes the registry as of a date.
func (g *Generator) Generate(d dates.Date) *Snapshot {
	snap := &Snapshot{
		Date:       d,
		Capacities: map[orgs.CountryOrg]float64{},
		PNI:        map[orgs.CountryOrg]float64{},
	}
	for _, cc := range g.W.Countries() {
		m := g.W.Market(cc)
		cover := registryCoverage(string(m.Country.Continent()))
		for _, e := range m.ActiveEntries(d) {
			pair := orgs.CountryOrg{Country: cc, Org: e.Org.ID}
			users := g.W.TrueUsers(cc, e.Org.ID, d)
			if users <= 0 {
				continue
			}
			// Demand: average bit/s of the org's traffic (volume is
			// bytes/day at intensity TrafficPerUser).
			demand := users * e.TrafficPerUser * 2.0e7 * 8 / 86400

			s := g.root.Derive(chanCap, m.Key(), e.Key)
			headroom := s.Range(2, 4)
			total := demand * headroom

			// Split between PNI and IXP fabric: the bigger the org, the
			// more of its capacity is private. Independent noise on the
			// two sides keeps their relationship loose (Appendix E's
			// R² ≈ 0.47).
			pniShare := 0.40 + 0.25*sizePercentile(users)
			pni := total * pniShare * s.LogNormal(0, 0.95)
			ixpRaw := total * (1 - pniShare) * s.LogNormal(0, 0.45)

			snap.PNI[pair] = pni
			if !s.Bool(cover) {
				continue // org not in the public registry
			}
			if q := quantize(ixpRaw); q > 0 {
				snap.Capacities[pair] = q
			}
		}
	}
	return snap
}

// sizePercentile maps a user count to a rough [0,1] size scale.
func sizePercentile(users float64) float64 {
	switch {
	case users > 1e8:
		return 1
	case users > 1e7:
		return 0.8
	case users > 1e6:
		return 0.6
	case users > 1e5:
		return 0.4
	case users > 1e4:
		return 0.2
	default:
		return 0
	}
}

// quantize converts a raw capacity to a sum of standard port sizes,
// dropping anything below a single 1G port.
func quantize(raw float64) float64 {
	total := 0.0
	for _, size := range []float64{port400, port100, port10G, port1G} {
		n := int(raw / size)
		total += float64(n) * size
		raw -= float64(n) * size
	}
	if raw > 0.5*port1G {
		total += port1G
	}
	return total
}

// CountryCapacities returns one country's per-org public capacities.
func (s *Snapshot) CountryCapacities(country string) map[string]float64 {
	out := map[string]float64{}
	for k, v := range s.Capacities {
		if k.Country == country {
			out[k.Org] = v
		}
	}
	return out
}

// Pairs returns the registered (country, org) pairs, sorted.
func (s *Snapshot) Pairs() []orgs.CountryOrg {
	out := make([]orgs.CountryOrg, 0, len(s.Capacities))
	for k := range s.Capacities {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Country != out[j].Country {
			return out[i].Country < out[j].Country
		}
		return out[i].Org < out[j].Org
	})
	return out
}
