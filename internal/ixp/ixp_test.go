package ixp

import (
	"testing"

	"repro/internal/dates"
	"repro/internal/geo"
	"repro/internal/stats"
	"repro/internal/world"
)

var testW = world.MustBuild(world.Config{Seed: 11})

func TestDeterministic(t *testing.T) {
	d := dates.New(2023, 7, 20)
	a := New(testW, 6).Generate(d)
	b := New(testW, 6).Generate(d)
	if len(a.Capacities) != len(b.Capacities) {
		t.Fatal("capacity sets differ")
	}
	for k, v := range a.Capacities {
		if b.Capacities[k] != v {
			t.Fatalf("nondeterministic capacity for %v", k)
		}
	}
}

func TestPublicRegistryIncomplete(t *testing.T) {
	snap := New(testW, 6).Generate(dates.New(2023, 7, 20))
	// Every registered org has a hidden PNI record, but not vice versa.
	if len(snap.Capacities) >= len(snap.PNI) {
		t.Fatalf("public registry (%d) should be smaller than PNI truth (%d)", len(snap.Capacities), len(snap.PNI))
	}
	for k := range snap.Capacities {
		if _, ok := snap.PNI[k]; !ok {
			t.Fatalf("registered org %v missing PNI ground truth", k)
		}
	}
}

func TestAfricaCoverageThin(t *testing.T) {
	snap := New(testW, 6).Generate(dates.New(2023, 7, 20))
	coverage := func(cont geo.Continent) float64 {
		reg, all := 0, 0
		for k := range snap.PNI {
			c, _ := geo.ByCode(k.Country)
			if c.Continent() != cont {
				continue
			}
			all++
			if _, ok := snap.Capacities[k]; ok {
				reg++
			}
		}
		if all == 0 {
			return 0
		}
		return float64(reg) / float64(all)
	}
	if coverage(geo.Africa) >= coverage(geo.Europe) {
		t.Errorf("Africa coverage %v not below Europe %v", coverage(geo.Africa), coverage(geo.Europe))
	}
}

func TestPortQuantization(t *testing.T) {
	snap := New(testW, 6).Generate(dates.New(2023, 7, 20))
	for k, v := range snap.Capacities {
		if v <= 0 {
			t.Fatalf("non-positive capacity for %v", k)
		}
		// Every capacity is a whole number of 1G ports.
		if rem := v / port1G; rem != float64(int64(rem)) {
			t.Fatalf("capacity %v for %v is not port-quantized", v, k)
		}
	}
}

func TestQuantize(t *testing.T) {
	cases := []struct {
		in   float64
		want float64
	}{
		{0, 0},
		{0.4 * port1G, 0},
		{0.7 * port1G, port1G},
		{3.2 * port1G, 3 * port1G},
		{25 * Gbps, 25 * Gbps},
		{450 * Gbps, 450 * Gbps},
	}
	for _, c := range cases {
		if got := quantize(c.in); got != c.want {
			t.Errorf("quantize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIXPPNICorrelationLoose(t *testing.T) {
	// Appendix E: IXP capacity is a reasonable but imperfect proxy for
	// PNI capacity — R² should be mid-range, far from 0 and from 1.
	snap := New(testW, 6).Generate(dates.New(2023, 7, 20))
	var xs, ys []float64
	for k, capv := range snap.Capacities {
		pni := snap.PNI[k]
		if pni <= 0 {
			continue
		}
		xs = append(xs, capv)
		ys = append(ys, pni)
	}
	if len(xs) < 200 {
		t.Fatalf("only %d paired observations", len(xs))
	}
	fit := stats.LinearRegression(xs, ys)
	if fit.R2 < 0.15 || fit.R2 > 0.9 {
		t.Errorf("IXP↔PNI R² = %v; want loose mid-range correlation", fit.R2)
	}
	if fit.Slope <= 0 {
		t.Errorf("IXP↔PNI slope %v should be positive", fit.Slope)
	}
}

func TestCapacityTracksTraffic(t *testing.T) {
	snap := New(testW, 6).Generate(dates.New(2023, 7, 20))
	d := dates.New(2023, 7, 20)
	var xs, ys []float64
	for k, capv := range snap.Capacities {
		e := testW.Entry(k.Country, k.Org)
		if e == nil {
			continue
		}
		traffic := testW.TrueUsers(k.Country, k.Org, d) * e.TrafficPerUser
		if traffic <= 0 {
			continue
		}
		xs = append(xs, traffic)
		ys = append(ys, capv)
	}
	r := stats.Spearman(xs, ys)
	if r < 0.5 {
		t.Errorf("capacity-traffic Spearman = %v; capacity should track demand", r)
	}
}

func TestCountryCapacitiesAndPairs(t *testing.T) {
	snap := New(testW, 6).Generate(dates.New(2023, 7, 20))
	fr := snap.CountryCapacities("FR")
	if len(fr) < 3 {
		t.Fatalf("only %d French registrations", len(fr))
	}
	pairs := snap.Pairs()
	if len(pairs) != len(snap.Capacities) {
		t.Fatal("Pairs length mismatch")
	}
	for i := 1; i < len(pairs); i++ {
		a, b := pairs[i-1], pairs[i]
		if a.Country > b.Country || (a.Country == b.Country && a.Org >= b.Org) {
			t.Fatal("Pairs not sorted")
		}
	}
}
