// Package repro_test is the benchmark harness: one testing.B benchmark
// per table and figure of the paper, each regenerating the experiment and
// reporting its headline metrics via b.ReportMetric, plus ablation
// benchmarks for the design choices DESIGN.md calls out.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The absolute values are simulation outputs (see EXPERIMENTS.md for the
// paper-vs-measured comparison); the benchmarks exist so that every
// reported number can be regenerated with a single standard command.
package repro_test

import (
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/orgs"
	"repro/internal/weighting"
)

var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
)

func lab() *experiments.Lab {
	benchOnce.Do(func() { benchLab = experiments.NewLab(42) })
	return benchLab
}

// runExperiment benches one named experiment and surfaces its metrics.
func runExperiment(b *testing.B, name string, keys ...string) {
	b.Helper()
	r, ok := experiments.RunnerByName(name)
	if !ok {
		b.Fatalf("unknown experiment %s", name)
	}
	l := lab()
	var res *experiments.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = r.Run(l)
	}
	b.StopTimer()
	for _, k := range keys {
		if v, ok := res.Metrics[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	runExperiment(b, "Table1", "apnic_rows", "cdn_pairs")
}

func BenchmarkTable2(b *testing.B) {
	runExperiment(b, "Table2", "top1_users_M", "top5_in_cn")
}

func BenchmarkFigure1(b *testing.B) {
	runExperiment(b, "Figure1", "max_user_jump_pct")
}

func BenchmarkFigure2(b *testing.B) {
	runExperiment(b, "Figure2", "global_r2", "negative_r2")
}

func BenchmarkFigure3(b *testing.B) {
	runExperiment(b, "Figure3", "pair_overlap_pct", "users_cov_pct", "vol_cov_pct")
}

func BenchmarkTable3(b *testing.B) {
	runExperiment(b, "Table3", "pct_above_90", "median_pct")
}

func BenchmarkTable4(b *testing.B) {
	runExperiment(b, "Table4", "strong_threshold")
}

func BenchmarkFigure4(b *testing.B) {
	runExperiment(b, "Figure4", "ua_principal_pct", "ua_complete_pct", "vol_principal_pct", "vol_complete_pct")
}

func BenchmarkFigure5(b *testing.B) {
	runExperiment(b, "Figure5", "no_slope", "in_slope", "mm_slope")
}

func BenchmarkFigure6(b *testing.B) {
	runExperiment(b, "Figure6", "beta", "n_above_ci")
}

func BenchmarkFigure7(b *testing.B) {
	runExperiment(b, "Figure7", "ru_frac", "de_frac")
}

func BenchmarkFigure8(b *testing.B) {
	runExperiment(b, "Figure8", "days_frac_over_02")
}

func BenchmarkFigure9(b *testing.B) {
	runExperiment(b, "Figure9", "trend_pearson")
}

func BenchmarkFigure10(b *testing.B) {
	runExperiment(b, "Figure10", "europe_gain")
}

func BenchmarkFigure11(b *testing.B) {
	runExperiment(b, "Figure11", "south_america", "southern_asia")
}

func BenchmarkFigure12(b *testing.B) {
	runExperiment(b, "Figure12", "pct_below_1", "pct_at_least_5")
}

func BenchmarkTable6(b *testing.B) {
	runExperiment(b, "Table6", "eastern_asia_alloc", "northern_america_alloc")
}

func BenchmarkFigure13(b *testing.B) {
	runExperiment(b, "Figure13", "r2")
}

// ---- Full-sweep scheduler benchmarks ---------------------------------

// benchSweep runs the complete 21-runner sweep through the concurrent
// scheduler. Each iteration uses a fresh lab so the singleflight day
// caches start cold — that is exactly what cmd/experiments pays — while
// world construction stays outside the timer.
func benchSweep(b *testing.B, parallelism int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		l := experiments.NewLab(42)
		b.StartTimer()
		experiments.RunAll(l, experiments.Runners(), parallelism, nil)
	}
}

func BenchmarkFullSweepParallel1(b *testing.B) { benchSweep(b, 1) }
func BenchmarkFullSweepParallel4(b *testing.B) { benchSweep(b, 4) }

// BenchmarkFullSweepGOMAXPROCS is the cmd/experiments default.
func BenchmarkFullSweepGOMAXPROCS(b *testing.B) { benchSweep(b, 0) }

// ---- Ablations -------------------------------------------------------

// BenchmarkAblationKendallFilter sweeps the small-org filter of the
// Kendall statistic (the paper picks 0.5%).
func BenchmarkAblationKendallFilter(b *testing.B) {
	l := lab()
	var at0, at05, at2 float64
	for i := 0; i < b.N; i++ {
		at0 = experiments.AblationKendallFilter(l, 0)
		at05 = experiments.AblationKendallFilter(l, 0.005)
		at2 = experiments.AblationKendallFilter(l, 0.02)
	}
	b.ReportMetric(at0, "rank_pct_nofilter")
	b.ReportMetric(at05, "rank_pct_0.5pct")
	b.ReportMetric(at2, "rank_pct_2pct")
}

// BenchmarkAblationBestDay compares naive snapshot selection against the
// §5.1.2 best-day rule.
func BenchmarkAblationBestDay(b *testing.B) {
	l := lab()
	var naive, adjusted float64
	for i := 0; i < b.N; i++ {
		naive, adjusted = experiments.AblationBestDay(l)
	}
	b.ReportMetric(naive, "ks_p90_naive")
	b.ReportMetric(adjusted, "ks_p90_bestday")
}

// BenchmarkAblationBotFilter sweeps the CDN bot-score threshold
// (the paper filters at >= 50).
func BenchmarkAblationBotFilter(b *testing.B) {
	l := lab()
	var off, paper, strict float64
	for i := 0; i < b.N; i++ {
		off = experiments.AblationBotFilter(l, 0)
		paper = experiments.AblationBotFilter(l, 50)
		strict = experiments.AblationBotFilter(l, 95)
	}
	b.ReportMetric(off, "vol_kendall_nofilter")
	b.ReportMetric(paper, "vol_kendall_t50")
	b.ReportMetric(strict, "vol_kendall_t95")
}

// BenchmarkAblationSamplingRate sweeps the CDN request sampling rate
// (the paper's CDN samples 1%).
func BenchmarkAblationSamplingRate(b *testing.B) {
	l := lab()
	var r001, r01, r1 float64
	for i := 0; i < b.N; i++ {
		r001 = experiments.AblationSamplingRate(l, 0.0001)
		r01 = experiments.AblationSamplingRate(l, 0.001)
		r1 = experiments.AblationSamplingRate(l, 0.01)
	}
	b.ReportMetric(r001, "coverage_0.01pct")
	b.ReportMetric(r01, "coverage_0.1pct")
	b.ReportMetric(r1, "coverage_1pct")
}

// BenchmarkAblationMICGrid sweeps the MIC grid-budget exponent
// (canonical 0.6).
func BenchmarkAblationMICGrid(b *testing.B) {
	l := lab()
	var lo, mid, hi float64
	for i := 0; i < b.N; i++ {
		lo = experiments.AblationMICGrid(l, 0.4)
		mid = experiments.AblationMICGrid(l, 0.6)
		hi = experiments.AblationMICGrid(l, 0.8)
	}
	b.ReportMetric(lo, "mic_b0.4")
	b.ReportMetric(mid, "mic_b0.6")
	b.ReportMetric(hi, "mic_b0.8")
}

func BenchmarkExtDrivers(b *testing.B) {
	runExperiment(b, "ExtDrivers", "in_top_gain_pp", "ch_top_loss_pp")
}

func BenchmarkExtTrafficModel(b *testing.B) {
	runExperiment(b, "ExtTrafficModel", "in_sample_r2", "out_sample_r2")
}

// BenchmarkWeightingSchemes quantifies the paper's §1 motivation: how far
// each AS-weighting tradition strays from the true user distribution
// (total variation distance; lower is better).
func BenchmarkWeightingSchemes(b *testing.B) {
	l := lab()
	d := experiments.Table2Day
	truth := map[orgs.CountryOrg]float64{}
	for _, p := range l.W.CountryOrgPairs(d) {
		if u := l.W.TrueUsers(p.Country, p.Org, d); u > 0 {
			truth[p] = u
		}
	}
	apnicUsers := l.Report(d).OrgUsers(l.W.Registry)

	var uniform, perCountry, apnicTV float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uniform = weighting.Evaluate(weighting.Uniform{}, truth).TotalVariation
		perCountry = weighting.Evaluate(weighting.PerCountry{}, truth).TotalVariation
		apnicTV = weighting.Evaluate(weighting.ByMeasure{Label: "apnic", Measure: apnicUsers}, truth).TotalVariation
	}
	b.ReportMetric(uniform, "tv_uniform")
	b.ReportMetric(perCountry, "tv_per_country")
	b.ReportMetric(apnicTV, "tv_apnic")
}

func BenchmarkExtProxies(b *testing.B) {
	runExperiment(b, "ExtProxies", "apnic_users_spearman", "dns_queries_spearman", "path_popularity_spearman")
}

// BenchmarkAblationMinSamples sweeps APNIC's inclusion floor (the paper's
// empirical observation is >= 120 samples per AS row).
func BenchmarkAblationMinSamples(b *testing.B) {
	l := lab()
	var none, paper, strict float64
	for i := 0; i < b.N; i++ {
		none = experiments.AblationMinSamples(l, 1)
		paper = experiments.AblationMinSamples(l, 120)
		strict = experiments.AblationMinSamples(l, 1000)
	}
	b.ReportMetric(none, "pair_cov_floor1")
	b.ReportMetric(paper, "pair_cov_floor120")
	b.ReportMetric(strict, "pair_cov_floor1000")
}
