package repro_test

import (
	"bytes"
	"testing"

	"repro/internal/apnic"
	"repro/internal/cdnlog"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/orgs"
	"repro/internal/weighting"
)

// TestEndToEndPipeline exercises the full stack in one flow: world →
// APNIC CSV round trip → CDN raw-log round trip → agreement analysis →
// artifact checks → weighting, all on the shared benchmark lab.
func TestEndToEndPipeline(t *testing.T) {
	l := lab()
	day := experiments.PrimaryCDNDay

	// APNIC: generate → CSV → parse → aggregate.
	rep := l.Report(day)
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := apnic.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	apnicUsers := parsed.OrgUsers(l.W.Registry)
	if len(apnicUsers) < 500 {
		t.Fatalf("only %d (country, org) pairs after CSV round trip", len(apnicUsers))
	}

	// CDN: raw logs → pipe → aggregation, consistent with attribution.
	sampler := cdnlog.NewSampler(l.W, l.Seed)
	var logBuf bytes.Buffer
	written, err := sampler.WriteDay(&logBuf, "DE", day, 100)
	if err != nil || written == 0 {
		t.Fatalf("log sampling failed: %d records, %v", written, err)
	}
	agg := cdnlog.NewAggregator(l.W.RoutingDB(), l.W.Registry, 50)
	if _, err := agg.ReadFrom(&logBuf); err != nil {
		t.Fatal(err)
	}
	for k := range agg.Stats() {
		if k.Country != "DE" {
			t.Fatalf("log record attributed outside DE: %v", k)
		}
	}

	// Agreement between the two pipelines for Germany.
	snap := l.Snapshot(day)
	res := core.CompareShares(orgs.CountryShares(apnicUsers, "DE"), snap.UAShares("DE"))
	if res.Level < core.PrincipalOrgAgreement {
		t.Fatalf("Germany agreement only %v", res.Level)
	}

	// Reliability verdicts for a clean and a distorted country.
	if v := experiments.RunCountryChecks(l, "DE", day).Verdict; v != core.Reliable {
		t.Errorf("Germany verdict %v", v)
	}
	if v := experiments.RunCountryChecks(l, "TM", day).Verdict; v == core.Reliable {
		t.Error("Turkmenistan should not be Reliable")
	}

	// Weighting: APNIC approximates the truth far better than uniform.
	truth := map[orgs.CountryOrg]float64{}
	for _, p := range l.W.CountryOrgPairs(day) {
		if u := l.W.TrueUsers(p.Country, p.Org, day); u > 0 {
			truth[p] = u
		}
	}
	tvAPNIC := weighting.Evaluate(weighting.ByMeasure{Label: "apnic", Measure: apnicUsers}, truth).TotalVariation
	tvUniform := weighting.Evaluate(weighting.Uniform{}, truth).TotalVariation
	if tvAPNIC >= tvUniform/2 {
		t.Errorf("APNIC TV %v not clearly better than uniform %v", tvAPNIC, tvUniform)
	}
}

// TestShapeInvariantsAcrossSeeds rebuilds the whole ecosystem under two
// fresh seeds and asserts the qualitative results the paper's story rests
// on. Shapes must hold for any world, not just the default seed.
func TestShapeInvariantsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed rebuild is slow")
	}
	for _, seed := range []uint64{101, 202} {
		seed := seed
		l := experiments.NewLab(seed)

		// Figure 3's invariant: modest pair overlap, near-total weight.
		f3 := experiments.Figure3(l)
		if v := f3.Metrics["users_cov_pct"]; v < 90 {
			t.Errorf("seed %d: user coverage %v", seed, v)
		}
		if v := f3.Metrics["pair_overlap_pct"]; v < 20 || v > 80 {
			t.Errorf("seed %d: pair overlap %v", seed, v)
		}

		// Figure 4's invariant: UA agreement beats volume agreement.
		f4 := experiments.Figure4(l)
		if f4.Metrics["ua_rank_pct"] <= f4.Metrics["vol_rank_pct"] {
			t.Errorf("seed %d: UA rank %v not above volume rank %v",
				seed, f4.Metrics["ua_rank_pct"], f4.Metrics["vol_rank_pct"])
		}

		// Figure 6's invariant: elasticity below ~1 with Russia above CI.
		f6 := experiments.Figure6(l)
		if v := f6.Metrics["beta"]; v < 0.6 || v > 1.1 {
			t.Errorf("seed %d: beta %v", seed, v)
		}
		if f6.Metrics["paper_outliers"] < 3 {
			t.Errorf("seed %d: only %v paper outliers recovered", seed, f6.Metrics["paper_outliers"])
		}
	}
}
